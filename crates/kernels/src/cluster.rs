//! Sharded multi-device execution with selectable placement schedules
//! (paper §5.4, Figure 11).
//!
//! A [`ClusterEngine`] partitions work over `D` simulated devices, each
//! backed by a real [`Engine`] running on its own OS thread with its own
//! workspaces and a disjoint observability lane range. Devices move real
//! buffers through deterministic point-to-point channels: every
//! collective round sends exactly one (possibly empty) message to every
//! peer, receivers drain their per-sender channels in ascending device
//! order, and sequence/round tags are verified on receipt — the same
//! `(lane, seq)` merge discipline the `obs` crate uses for spans. The
//! result is bit-level reproducibility: for a fixed per-device thread
//! count, outputs do not depend on OS scheduling, and for the
//! data-parallel, project-then-communicate, and tensor-parallel schedules
//! they are bit-identical to the single-device engine at *any* device
//! count.
//!
//! The four placement schedules:
//!
//! - [`PlacementKind::DataParallel`] (Fig. 11b): each device owns a
//!   contiguous destination-vertex range, halo rows of every vertex-rowed
//!   global travel in an all-to-all, then each device executes its
//!   dst-filtered plan. Bit-identical to single-device because the
//!   filtered plan preserves task *slots* (identical chunk-to-worker
//!   mapping) and scatter-adds to a row only ever come from that row's
//!   own edges, in original order.
//! - [`PlacementKind::ProjectThenCommunicate`] (Fig. 11c): the
//!   edge-independent prologue (projections) runs on each row's home
//!   device, and only the *projected* halo rows travel — a win when the
//!   projection shrinks the embedding. Exchanged bits are the owner's
//!   bits verbatim, so the data-parallel bitwise argument carries over.
//! - [`PlacementKind::ComputeThenReduce`] (Fig. 11d): edges partition by
//!   *source* into [`SrcGroups::CANONICAL`] fixed groups (independent of
//!   the device count); each device accumulates its groups' partial
//!   aggregates, then a reduce-scatter sums them in ascending global
//!   group order. The float summation sequence is a function of the
//!   group decomposition only, so outputs are bit-identical across
//!   device counts — but *not* to the single-device engine, whose
//!   partials are per-worker rather than per-group.
//! - [`PlacementKind::TensorParallel`] (NeutronTP-style): the hidden
//!   dimension splits by column; every device runs *all* edges on its
//!   column slice of the one width-carrying global, and the accumulator
//!   slices all-gather before one epilogue. Per-output-element float
//!   order is untouched (every kernel computes output columns
//!   independently), so this is bit-identical to the single-device
//!   engine at any device count, with zero graph-partition skew.

use crate::engine::{Engine, ExecMode};
use crate::micro::{
    compile, eval_edge_independent_public, plan_is_dst_complete, prologue_name,
    run_epilogue, summarize, CompileError, KernelProgram, MicroKernel,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;
use wisegraph_dfg::Dfg;
use wisegraph_graph::{AttrKind, Graph, ShardSpec, SrcGroups};
use wisegraph_gtask::PartitionPlan;
use wisegraph_obs::causal::{collective_id, CausalEdge, CausalLog, EndpointId};
use wisegraph_obs::clock::Stopwatch;
use wisegraph_obs::critical::{
    analyze, logical_cost, AttributionReport, DeviceTimeline, PhaseKind, Segment,
};
use wisegraph_obs::{keys, span, with_lane, Class, Counters};
use wisegraph_sim::PlacementKind;
use wisegraph_tensor::Tensor;

/// One point-to-point message moving through the cluster fabric.
#[derive(Clone, Debug)]
pub struct Message {
    /// Sending device.
    pub from: usize,
    /// Per-sender sequence number, strictly increasing.
    pub seq: u64,
    /// Collective round this message belongs to.
    pub round: u32,
    /// Explicit row indices for halo exchanges; empty when the row set is
    /// implied by the deterministic sharding (reduce-scatter, all-gather).
    pub rows: Vec<u32>,
    /// Row-major payload.
    pub payload: Vec<f32>,
}

/// Direction of an [`ExchangeEvent`], from the logging device's view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// The device pushed this message.
    Sent,
    /// The device drained this message.
    Received,
}

/// One logged send or receive.
#[derive(Clone, Debug, PartialEq)]
pub struct ExchangeEvent {
    /// Collective name (`"all_to_all"`, `"reduce_scatter"`, `"all_gather"`).
    pub collective: &'static str,
    /// Round index within the run.
    pub round: u32,
    /// Sender.
    pub from: usize,
    /// Receiver.
    pub to: usize,
    /// Bytes on the wire (4 per row index + 4 per payload element).
    pub bytes: u64,
    /// Whether the logging side sent or received.
    pub direction: Direction,
}

/// The full communication record of a cluster run: per-device logs merged
/// in ascending device order, so the event sequence is deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExchangeLog {
    /// All events.
    pub events: Vec<ExchangeEvent>,
}

impl ExchangeLog {
    /// Total bytes pushed (each transfer counted once, on the send side).
    pub fn bytes_sent(&self) -> u64 {
        self.dir_sum(Direction::Sent)
    }

    /// Total bytes drained (the conservation counterpart).
    pub fn bytes_received(&self) -> u64 {
        self.dir_sum(Direction::Received)
    }

    fn dir_sum(&self, d: Direction) -> u64 {
        self.events.iter().filter(|e| e.direction == d).map(|e| e.bytes).sum()
    }

    /// Messages pushed.
    pub fn messages_sent(&self) -> u64 {
        self.events.iter().filter(|e| e.direction == Direction::Sent).count() as u64
    }

    /// Bytes pushed per collective name.
    pub fn bytes_by_collective(&self) -> BTreeMap<&'static str, u64> {
        let mut m = BTreeMap::new();
        for e in &self.events {
            if e.direction == Direction::Sent {
                *m.entry(e.collective).or_insert(0) += e.bytes;
            }
        }
        m
    }

    /// Bytes pushed per sending device.
    pub fn sent_by_device(&self) -> BTreeMap<usize, u64> {
        let mut m = BTreeMap::new();
        for e in &self.events {
            if e.direction == Direction::Sent {
                *m.entry(e.from).or_insert(0) += e.bytes;
            }
        }
        m
    }

    /// `true` when every send has exactly one matching receive with the
    /// same `(collective, round, from, to, bytes)` — nothing lost,
    /// duplicated, or invented in flight.
    pub fn is_conserved(&self) -> bool {
        let mut sent: BTreeMap<(&str, u32, usize, usize, u64), i64> = BTreeMap::new();
        for e in &self.events {
            let k = (e.collective, e.round, e.from, e.to, e.bytes);
            *sent.entry(k).or_insert(0) += match e.direction {
                Direction::Sent => 1,
                Direction::Received => -1,
            };
        }
        sent.values().all(|&v| v == 0)
    }
}

/// Per-device communication endpoint: one dedicated channel per peer in
/// each direction, so draining "the message from device `s`" is a plain
/// indexed `recv` — no cross-sender ordering exists to get wrong, and a
/// crashed peer disconnects exactly the channels its death affects.
struct Mailbox {
    me: usize,
    txs: Vec<Sender<Message>>,
    rxs: Vec<Receiver<Message>>,
    next_seq: u64,
    next_expected: Vec<u64>,
    round: u32,
    log: ExchangeLog,
    /// Receive-order counter: the `seq` of the next receive endpoint.
    recv_seq: u64,
    /// Model layer tag stamped on every phase span and segment.
    layer: u32,
    /// Send→receive edges recorded on the receive side.
    causal: CausalLog,
    /// The device's phase segments, in execution order.
    timeline: Vec<Segment>,
}

impl Mailbox {
    /// One collective round: pushes `outgoing[p]` to every peer `p`
    /// (empty messages included — the round structure is fixed), then
    /// drains exactly one message per peer in ascending device order,
    /// verifying round tags and per-sender sequence numbers.
    ///
    /// The round is one `cluster.phase.exchange` span and one exchange
    /// [`Segment`], and every drained message records a [`CausalEdge`]
    /// from the sender's wire endpoint `(from, round, seq)` to this
    /// device's receive endpoint `(me, round, recv_seq)` — both pure
    /// functions of the schedule, so the merged edge list is
    /// bit-identical across runs and thread counts.
    fn exchange(
        &mut self,
        collective: &'static str,
        mut outgoing: Vec<(Vec<u32>, Vec<f32>)>,
    ) -> Vec<Message> {
        let d = self.txs.len();
        assert_eq!(outgoing.len(), d, "one outgoing slot per device");
        let round = self.round;
        self.round += 1;
        let mut sp = span!(
            "cluster.phase.exchange",
            device = self.me,
            layer = self.layer,
            round = round,
            coll = collective_id(collective)
        );
        let sw = Stopwatch::start();
        let mut moved = 0u64;
        let mut idle_ns = 0u64;
        for (p, slot) in outgoing.iter_mut().enumerate() {
            if p == self.me {
                continue;
            }
            let (rows, payload) = std::mem::take(slot);
            let bytes = 4 * (rows.len() + payload.len()) as u64;
            moved += bytes;
            self.log.events.push(ExchangeEvent {
                collective,
                round,
                from: self.me,
                to: p,
                bytes,
                direction: Direction::Sent,
            });
            let seq = self.next_seq;
            self.next_seq += 1;
            self.txs[p]
                .send(Message { from: self.me, seq, round, rows, payload })
                .expect("peer device hung up");
        }
        let mut got = Vec::with_capacity(d.saturating_sub(1));
        for s in 0..d {
            if s == self.me {
                continue;
            }
            let blocked = Stopwatch::start();
            let m = self.rxs[s].recv().expect("peer device closed its channels");
            idle_ns += blocked.elapsed_ns();
            assert_eq!(m.from, s, "message arrived on the wrong channel");
            assert_eq!(
                m.round, round,
                "device {} expected round {round} from {s}, got {}",
                self.me, m.round
            );
            assert!(
                m.seq >= self.next_expected[s],
                "stale sequence {} from device {s}",
                m.seq
            );
            self.next_expected[s] = m.seq + 1;
            let bytes = 4 * (m.rows.len() + m.payload.len()) as u64;
            moved += bytes;
            self.log.events.push(ExchangeEvent {
                collective,
                round,
                from: s,
                to: self.me,
                bytes,
                direction: Direction::Received,
            });
            self.causal.edges.push(CausalEdge {
                collective,
                from: EndpointId {
                    device: s as u32,
                    round,
                    seq: m.seq,
                },
                to: EndpointId {
                    device: self.me as u32,
                    round,
                    seq: self.recv_seq,
                },
                bytes,
            });
            self.recv_seq += 1;
            got.push(m);
        }
        let wall_ns = sw.elapsed_ns();
        let idle_ns = idle_ns.min(wall_ns);
        sp.arg("cost", moved);
        sp.arg("wall_ns", wall_ns);
        sp.arg("idle_ns", idle_ns);
        self.timeline.push(Segment {
            kind: PhaseKind::Exchange { collective, round },
            layer: self.layer,
            cost: moved,
            wall_ns,
            idle_wall_ns: idle_ns,
        });
        got
    }

    /// Runs `f` as one `cluster.phase.compute` span and compute
    /// [`Segment`]. The segment's logical cost is the engine's Work-class
    /// [`logical_cost`] delta across the call plus `extra_cost` of the
    /// result — the latter covers element work done outside the engine
    /// (prologue projection, reduce accumulation, epilogue assembly).
    fn record_compute<R>(
        &mut self,
        engine: &Engine,
        f: impl FnOnce() -> Result<R, CompileError>,
        extra_cost: impl FnOnce(&R) -> u64,
    ) -> Result<R, CompileError> {
        let mut sp = span!("cluster.phase.compute", device = self.me, layer = self.layer);
        let before = logical_cost(&engine.stats());
        let sw = Stopwatch::start();
        let out = f()?;
        let wall_ns = sw.elapsed_ns();
        let cost =
            logical_cost(&engine.stats()).saturating_sub(before) + extra_cost(&out);
        sp.arg("cost", cost);
        sp.arg("wall_ns", wall_ns);
        self.timeline.push(Segment {
            kind: PhaseKind::Compute,
            layer: self.layer,
            cost,
            wall_ns,
            idle_wall_ns: 0,
        });
        Ok(out)
    }
}

/// The per-run observability artifacts [`ClusterEngine::run_devices`]
/// collects beside the device results: the merged exchange log, the
/// merged causal edges, and one phase timeline per device.
struct RunArtifacts {
    exchange: ExchangeLog,
    causal: CausalLog,
    timelines: Vec<DeviceTimeline>,
}

/// What one cluster execution produced.
#[derive(Clone, Debug)]
pub struct ClusterRun {
    /// The DFG outputs, assembled from the per-device partitions.
    pub outputs: Vec<Tensor>,
    /// This run's communication record (per-device logs, merged in
    /// ascending device order).
    pub exchange: ExchangeLog,
    /// Per-device engine counter snapshots *after* the run (cumulative
    /// over the engine's lifetime, like [`Engine::stats`]).
    pub per_device: Vec<Counters>,
    /// The schedule that ran.
    pub placement: PlacementKind,
    /// Send→receive causal edges, merged in ascending device order.
    pub causal: CausalLog,
    /// Per-device phase timelines (compute/exchange segments with
    /// logical costs and a wall overlay), in device order.
    pub timelines: Vec<DeviceTimeline>,
}

impl ClusterRun {
    /// Replays this run's timelines against its causal edges and returns
    /// the critical-path / idle-time / straggler attribution report.
    ///
    /// # Errors
    ///
    /// See [`analyze`].
    pub fn attribution(&self) -> Result<AttributionReport, String> {
        analyze(&self.timelines, &self.causal)
    }
}

/// Why a placement cannot run a given program.
///
/// Checked statically on the driver before any device thread starts, so
/// an incompatible request fails fast instead of wedging a collective.
pub fn placement_compatible(
    program: &KernelProgram,
    g: &Graph,
    globals: &HashMap<String, Tensor>,
    placement: PlacementKind,
) -> Result<(), String> {
    let origins = vertex_gather_origins(program, g, globals);
    let unknown = origins.iter().any(|(_, o)| o.is_none());
    match placement {
        PlacementKind::DataParallel | PlacementKind::ProjectThenCommunicate => {
            if unknown {
                return Err(format!(
                    "{}: a vertex-rowed global is gathered by a stream of \
                     unknown provenance, so halo rows cannot be determined",
                    placement.name()
                ));
            }
            if placement == PlacementKind::ProjectThenCommunicate
                && program.prologue.is_empty()
            {
                return Err(
                    "project_then_communicate: the program hoists no \
                     edge-independent projection, so there is nothing to \
                     project before communicating"
                        .into(),
                );
            }
            Ok(())
        }
        PlacementKind::ComputeThenReduce => {
            if program.requires_dst_complete {
                return Err(
                    "compute_then_reduce: per-destination normalization \
                     cannot split a destination's in-edges across devices"
                        .into(),
                );
            }
            if !program.prologue.is_empty() {
                return Err(
                    "compute_then_reduce: hoisted prologue tensors are not \
                     redistributed by the source-group decomposition"
                        .into(),
                );
            }
            if origins.iter().any(|(_, o)| *o != Some(AttrKind::SrcId)) {
                return Err(
                    "compute_then_reduce: every vertex-rowed gather must be \
                     source-indexed (devices hold source ranges only)"
                        .into(),
                );
            }
            Ok(())
        }
        PlacementKind::TensorParallel => {
            if program.requires_dst_complete {
                return Err(
                    "tensor_parallel: per-destination normalization mixes \
                     columns, so the hidden dimension cannot be split"
                        .into(),
                );
            }
            if !program.prologue.is_empty() {
                return Err(
                    "tensor_parallel: hoisted prologue projections are not \
                     column-sliced"
                        .into(),
                );
            }
            if tp_slice_global(program, globals).is_none() {
                return Err(
                    "tensor_parallel: no global tensor carries the \
                     accumulator width in its last dimension"
                        .into(),
                );
            }
            Ok(())
        }
    }
}

/// The placements able to run `program`, in [`PlacementKind::ALL`] order.
/// Data-parallel is compatible with every program this workspace
/// compiles, so the result is never empty.
pub fn compatible_placements(
    program: &KernelProgram,
    g: &Graph,
    globals: &HashMap<String, Tensor>,
) -> Vec<PlacementKind> {
    PlacementKind::ALL
        .into_iter()
        .filter(|&p| placement_compatible(program, g, globals, p).is_ok())
        .collect()
}

/// The global whose last dimension the tensor-parallel schedule slices:
/// among the names the per-task program reads (sorted), the first whose
/// last dimension equals the accumulator width. `"W"` sorts before `"h"`,
/// so square-projection models slice the weight, not the embedding.
pub fn tp_slice_global(
    program: &KernelProgram,
    globals: &HashMap<String, Tensor>,
) -> Option<String> {
    let mut names: Vec<&str> =
        program.ops.iter().flat_map(crate::micro::global_inputs).collect();
    names.sort_unstable();
    names.dedup();
    names
        .into_iter()
        .find(|n| {
            globals
                .get(*n)
                .is_some_and(|t| t.dims().last() == Some(&program.out_width))
        })
        .map(String::from)
}

/// Every `GatherRows` of a vertex-rowed tensor (a raw global with
/// `dims[0] == |V|`, or any `__pre_` prologue pseudo-global) paired with
/// the provenance of its index stream.
fn vertex_gather_origins(
    program: &KernelProgram,
    g: &Graph,
    globals: &HashMap<String, Tensor>,
) -> Vec<(String, Option<AttrKind>)> {
    let s = summarize(program);
    let v = g.num_vertices();
    let mut out = Vec::new();
    for op in &program.ops {
        if let MicroKernel::GatherRows { src, idx, .. } = op {
            let vertex_rowed = src.starts_with("__pre_")
                || globals.get(src).is_some_and(|t| t.dims().first() == Some(&v));
            if vertex_rowed {
                out.push((src.clone(), s.stream_origin[idx.0]));
            }
        }
    }
    out
}

/// The vertex-rowed tensors gathered by *source*-derived streams — the
/// names whose halo rows must travel before per-task execution.
fn src_gathered_names(
    program: &KernelProgram,
    g: &Graph,
    globals: &HashMap<String, Tensor>,
) -> BTreeSet<String> {
    vertex_gather_origins(program, g, globals)
        .into_iter()
        .filter(|(_, o)| *o != Some(AttrKind::DstId))
        .map(|(n, _)| n)
        .collect()
}

/// Sorted names of the globals with one row per vertex.
fn vertex_rowed_names(globals: &HashMap<String, Tensor>, v: usize) -> Vec<String> {
    let mut names: Vec<String> = globals
        .iter()
        .filter(|(_, t)| t.dims().first() == Some(&v))
        .map(|(n, _)| n.clone())
        .collect();
    names.sort_unstable();
    names
}

/// Copies of `globals` with every vertex-rowed tensor masked to the rows
/// `keep` accepts (other rows zero); non-vertex tensors are shared as-is.
fn masked_globals(
    globals: &HashMap<String, Tensor>,
    v: usize,
    keep: impl Fn(usize) -> bool,
) -> HashMap<String, Tensor> {
    globals
        .iter()
        .map(|(name, t)| {
            if t.dims().first() != Some(&v) {
                return (name.clone(), t.clone());
            }
            (name.clone(), mask_rows(t, v, &keep))
        })
        .collect()
}

/// A copy of `t` keeping only the rows `keep` accepts.
fn mask_rows(t: &Tensor, v: usize, keep: &impl Fn(usize) -> bool) -> Tensor {
    let w = t.numel() / v.max(1);
    let mut m = Tensor::zeros(t.dims());
    for r in 0..v {
        if keep(r) {
            m.data_mut()[r * w..(r + 1) * w]
                .copy_from_slice(&t.data()[r * w..(r + 1) * w]);
        }
    }
    m
}

/// Gathers `rows` of `t` (row width `w`) into a flat payload.
fn gather_payload(t: &Tensor, rows: &[u32], w: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(rows.len() * w);
    for &r in rows {
        let b = r as usize * w;
        out.extend_from_slice(&t.data()[b..b + w]);
    }
    out
}

/// Writes a received halo payload into `t` at the message's rows.
fn scatter_payload(t: &mut Tensor, rows: &[u32], payload: &[f32], w: usize) {
    assert_eq!(payload.len(), rows.len() * w, "halo payload width mismatch");
    for (i, &r) in rows.iter().enumerate() {
        let b = r as usize * w;
        t.data_mut()[b..b + w].copy_from_slice(&payload[i * w..(i + 1) * w]);
    }
}

/// A copy of `t` keeping columns `cols` of the last dimension.
fn slice_last_dim(t: &Tensor, cols: std::ops::Range<usize>) -> Tensor {
    let dims = t.dims();
    let w = *dims.last().expect("sliced tensor has rank >= 1");
    let outer = t.numel() / w.max(1);
    let mut data = Vec::with_capacity(outer * cols.len());
    for i in 0..outer {
        let b = i * w;
        data.extend_from_slice(&t.data()[b + cols.start..b + cols.end]);
    }
    let mut nd = dims.to_vec();
    *nd.last_mut().expect("rank >= 1") = cols.len();
    Tensor::from_vec(data, &nd)
}

/// A cluster of simulated devices, each a real [`Engine`] with its own
/// worker threads, workspaces, and observability lanes.
pub struct ClusterEngine {
    engines: Vec<Engine>,
    threads_per_device: usize,
    log: Mutex<ExchangeLog>,
    /// Layer tag stamped on phase spans/segments of subsequent runs.
    layer: AtomicU32,
}

impl ClusterEngine {
    /// A cluster of `devices` engines with `threads_per_device` workers
    /// each, in [`ExecMode::Auto`].
    ///
    /// # Panics
    ///
    /// Panics if `devices == 0` or `threads_per_device == 0`.
    pub fn new(devices: usize, threads_per_device: usize) -> Self {
        Self::with_mode(devices, threads_per_device, ExecMode::Auto)
    }

    /// A cluster with an explicit per-device [`ExecMode`]. Device `d`'s
    /// engine records on lanes `1 + d·(threads+1)` through
    /// `(d+1)·(threads+1)`: lane 0 stays the driver's, and no two devices
    /// share a lane, so concurrent devices never interleave one span
    /// stream.
    ///
    /// # Panics
    ///
    /// Panics if `devices == 0` or `threads_per_device == 0`.
    pub fn with_mode(devices: usize, threads_per_device: usize, mode: ExecMode) -> Self {
        assert!(devices > 0, "need at least one device");
        let engines = (0..devices)
            .map(|d| {
                Engine::with_lane_base(
                    threads_per_device,
                    mode,
                    1 + (d * (threads_per_device + 1)) as u32,
                )
            })
            .collect();
        Self {
            engines,
            threads_per_device,
            log: Mutex::new(ExchangeLog::default()),
            layer: AtomicU32::new(0),
        }
    }

    /// Sets the model-layer tag stamped on the phase spans, segments, and
    /// attribution of subsequent runs (multi-layer drivers call this
    /// before each layer; single-layer runs keep the default 0).
    pub fn set_layer(&self, layer: u32) {
        self.layer.store(layer, Ordering::Relaxed);
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.engines.len()
    }

    /// Worker threads per device.
    pub fn threads_per_device(&self) -> usize {
        self.threads_per_device
    }

    /// The observability lane device `d`'s driver thread records on.
    fn device_lane(&self, d: usize) -> u32 {
        1 + (d * (self.threads_per_device + 1)) as u32
    }

    /// Merged cluster counters: every device engine's counters under a
    /// `device.NN.` prefix, plus the cumulative `comm.*` totals derived
    /// from the exchange log. The `comm.*` sums and every per-device
    /// `kernel.*` total are [`Class::Work`]: pure functions of graph,
    /// schedule, and device count, independent of thread counts.
    pub fn stats(&self) -> Counters {
        let mut c = Counters::new();
        for (d, e) in self.engines.iter().enumerate() {
            c.merge_prefixed(&keys::device_prefix(d), &e.stats());
        }
        let log = self.log.lock().expect("cluster log poisoned");
        c.add(keys::COMM_BYTES_EXCHANGED, log.bytes_sent());
        c.add(keys::COMM_MESSAGES, log.messages_sent());
        for (coll, b) in log.bytes_by_collective() {
            c.add(keys::comm_collective_bytes(coll), b);
        }
        c.record_max(keys::COMM_DEVICES, self.devices() as u64, Class::Resource);
        c
    }

    /// Compiles and executes a DFG under the given placement schedule.
    ///
    /// # Errors
    ///
    /// Returns an error if compilation fails, the placement is
    /// incompatible with the compiled program
    /// ([`placement_compatible`]), the plan violates the program's
    /// destination-completeness requirement, or an output is not
    /// vertex-rowed.
    ///
    /// # Panics
    ///
    /// Panics if a device or worker thread panics.
    pub fn execute(
        &self,
        dfg: &Dfg,
        g: &Graph,
        plan: &PartitionPlan,
        globals: &HashMap<String, Tensor>,
        placement: PlacementKind,
    ) -> Result<ClusterRun, CompileError> {
        let program = compile(dfg, g)?;
        self.execute_program(&program, dfg, g, plan, globals, placement)
    }

    /// [`ClusterEngine::execute`] for an already compiled program.
    ///
    /// # Errors
    ///
    /// See [`ClusterEngine::execute`].
    ///
    /// # Panics
    ///
    /// Panics if a device or worker thread panics.
    pub fn execute_program(
        &self,
        program: &KernelProgram,
        dfg: &Dfg,
        g: &Graph,
        plan: &PartitionPlan,
        globals: &HashMap<String, Tensor>,
        placement: PlacementKind,
    ) -> Result<ClusterRun, CompileError> {
        let _sp = span!(
            "cluster.execute",
            devices = self.devices(),
            tasks = plan.tasks.len()
        );
        placement_compatible(program, g, globals, placement).map_err(CompileError)?;
        // The dst-complete precondition is verified on the driver so that
        // no device can bail out while its peers are already blocked in a
        // collective. (Per-device filtered plans of a dst-complete plan
        // are dst-complete: filtering by destination keeps every
        // destination's in-edges together.)
        if program.requires_dst_complete
            && self.engines[0].mode() != ExecMode::Sanitize
            && !plan_is_dst_complete(g, plan)
        {
            return Err(CompileError(
                "per-destination normalization requires a destination-complete plan"
                    .into(),
            ));
        }
        let (outputs, art) = match placement {
            PlacementKind::DataParallel => {
                self.run_halo_schedule(program, dfg, g, plan, globals, false)?
            }
            PlacementKind::ProjectThenCommunicate => {
                self.run_halo_schedule(program, dfg, g, plan, globals, true)?
            }
            PlacementKind::ComputeThenReduce => {
                self.run_compute_then_reduce(program, dfg, g, plan, globals)?
            }
            PlacementKind::TensorParallel => {
                self.run_tensor_parallel(program, dfg, g, plan, globals)?
            }
        };
        self.log
            .lock()
            .expect("cluster log poisoned")
            .events
            .extend(art.exchange.events.iter().cloned());
        Ok(ClusterRun {
            outputs,
            exchange: art.exchange,
            per_device: self.engines.iter().map(Engine::stats).collect(),
            placement,
            causal: art.causal,
            timelines: art.timelines,
        })
    }

    /// Spawns one thread per device, wires the channel grid, runs `f` on
    /// each, and returns the per-device results plus the merged
    /// observability artifacts (exchange log, causal edges, phase
    /// timelines — all in ascending device order). Errors propagate in
    /// device order.
    fn run_devices<T, F>(&self, f: F) -> Result<(Vec<T>, RunArtifacts), CompileError>
    where
        T: Send,
        F: Fn(usize, &mut Mailbox) -> Result<T, CompileError> + Sync,
    {
        let d = self.devices();
        let layer = self.layer.load(Ordering::Relaxed);
        // Channel grid: tx_grid[s][r] sends s → r; rx_grid[r][s] receives
        // s → r. Dedicated per-pair channels mean a device drains "the
        // message from s" by index, and a crashed peer disconnects
        // exactly its own channels (unblocking everyone else).
        let mut tx_grid: Vec<Vec<Sender<Message>>> = Vec::with_capacity(d);
        let mut rx_grid: Vec<Vec<Receiver<Message>>> =
            (0..d).map(|_| Vec::with_capacity(d)).collect();
        for _s in 0..d {
            let mut row = Vec::with_capacity(d);
            for rx_row in rx_grid.iter_mut() {
                let (tx, rx) = channel();
                row.push(tx);
                rx_row.push(rx);
            }
            tx_grid.push(row);
        }
        // Transpose: device dev sends on tx_grid[dev] (its row) and
        // receives on rx_grid[dev] (its column).
        type DeviceOut<T> = (T, ExchangeLog, CausalLog, DeviceTimeline);
        let results: Vec<Result<DeviceOut<T>, CompileError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = tx_grid
                    .into_iter()
                    .zip(rx_grid)
                    .enumerate()
                    .map(|(dev, (txs, rxs))| {
                        let f = &f;
                        let lane = self.device_lane(dev);
                        scope.spawn(move || {
                            with_lane(lane, || {
                                let _sp = span!("cluster.device", device = dev);
                                let mut mb = Mailbox {
                                    me: dev,
                                    txs,
                                    rxs,
                                    next_seq: 0,
                                    next_expected: vec![0; d],
                                    round: 0,
                                    log: ExchangeLog::default(),
                                    recv_seq: 0,
                                    layer,
                                    causal: CausalLog::new(),
                                    timeline: Vec::new(),
                                };
                                f(dev, &mut mb).map(|t| {
                                    (
                                        t,
                                        std::mem::take(&mut mb.log),
                                        std::mem::take(&mut mb.causal),
                                        DeviceTimeline {
                                            device: dev as u32,
                                            segments: std::mem::take(&mut mb.timeline),
                                        },
                                    )
                                })
                            })
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("device thread panicked"))
                    .collect()
            });
        let mut outs = Vec::with_capacity(d);
        let mut art = RunArtifacts {
            exchange: ExchangeLog::default(),
            causal: CausalLog::new(),
            timelines: Vec::with_capacity(d),
        };
        for r in results {
            let (t, l, causal, timeline) = r?;
            outs.push(t);
            art.exchange.events.extend(l.events);
            art.causal.merge(causal);
            art.timelines.push(timeline);
        }
        Ok((outs, art))
    }

    /// Data-parallel and project-then-communicate: both filter the plan
    /// by destination ownership and halo-exchange rows in an all-to-all;
    /// they differ in *what* travels — raw vertex-rowed globals before a
    /// local prologue (data-parallel) versus locally projected prologue
    /// tensors (project-then-communicate).
    fn run_halo_schedule(
        &self,
        program: &KernelProgram,
        dfg: &Dfg,
        g: &Graph,
        plan: &PartitionPlan,
        globals: &HashMap<String, Tensor>,
        project_first: bool,
    ) -> Result<(Vec<Tensor>, RunArtifacts), CompileError> {
        let d = self.devices();
        let v = g.num_vertices();
        let spec = ShardSpec::new(v, d);
        let dplans: Vec<PartitionPlan> = (0..d)
            .map(|dev| plan.filtered(g, |e| spec.owner(g.dst()[e]) == dev))
            .collect();
        let halos: Vec<Vec<u32>> =
            (0..d).map(|dev| spec.remote_unique_src(g, dev)).collect();
        // The names whose halo rows travel. Data-parallel ships every
        // vertex-rowed *input* (remote × f_in); project-then-communicate
        // ships only the source-gathered tensors the per-task program
        // actually reads — which, with the prologue evaluated at home,
        // are the projected rows (remote × f_out).
        let exchange_names: Vec<String> = if project_first {
            src_gathered_names(program, g, globals).into_iter().collect()
        } else {
            vertex_rowed_names(globals, v)
        };
        let (outs, art) = self.run_devices(|dev, mb| {
            let own = spec.owned_range(dev);
            let mut dglobals = masked_globals(globals, v, |r| own.contains(&r));
            let mut prologue_map: HashMap<String, Tensor> = HashMap::new();
            if project_first {
                prologue_map = mb.record_compute(
                    &self.engines[dev],
                    || {
                        let pre = eval_edge_independent_public(dfg, g, &dglobals);
                        let mut m = HashMap::new();
                        for id in &program.prologue {
                            let t = pre.get(id).cloned().ok_or_else(|| {
                                CompileError(format!(
                                    "prologue node {} not evaluable",
                                    id.0
                                ))
                            })?;
                            if t.dims().first() != Some(&v) {
                                return Err(CompileError(format!(
                                    "project_then_communicate: prologue node {} is \
                                     not vertex-rowed, its rows have no home device",
                                    id.0
                                )));
                            }
                            m.insert(prologue_name(*id), t);
                        }
                        Ok(m)
                    },
                    |m| {
                        program
                            .prologue
                            .iter()
                            .map(|id| m[&prologue_name(*id)].numel() as u64)
                            .sum()
                    },
                )?;
            }
            for name in &exchange_names {
                let local = if let Some(t) = prologue_map.get(name) {
                    t
                } else {
                    &dglobals[name]
                };
                let w = local.numel() / v.max(1);
                let outgoing: Vec<(Vec<u32>, Vec<f32>)> = (0..d)
                    .map(|p| {
                        if p == dev {
                            return (Vec::new(), Vec::new());
                        }
                        let rows: Vec<u32> = halos[p]
                            .iter()
                            .copied()
                            .filter(|&r| own.contains(&(r as usize)))
                            .collect();
                        let payload = gather_payload(local, &rows, w);
                        (rows, payload)
                    })
                    .collect();
                let got = mb.exchange("all_to_all", outgoing);
                let target = prologue_map
                    .get_mut(name)
                    .unwrap_or_else(|| dglobals.get_mut(name).expect("exchanged name"));
                for m in got {
                    scatter_payload(target, &m.rows, &m.payload, w);
                }
            }
            let engine = &self.engines[dev];
            if project_first {
                mb.record_compute(
                    engine,
                    || {
                        engine.execute_program_with_prologue(
                            program,
                            dfg,
                            g,
                            &dplans[dev],
                            &dglobals,
                            &prologue_map,
                        )
                    },
                    |_| 0,
                )
            } else {
                mb.record_compute(
                    engine,
                    || engine.execute_program(program, dfg, g, &dplans[dev], &dglobals),
                    |_| 0,
                )
            }
        })?;
        Ok((merge_vertex_outputs(&spec, v, &outs)?, art))
    }

    /// Compute-then-reduce: edges partition by source into the canonical
    /// fixed groups; each device accumulates its groups' partials, then a
    /// reduce-scatter delivers every owned row's per-group slices, summed
    /// in ascending global group order. The summation sequence depends
    /// only on the group decomposition, never on the device count.
    fn run_compute_then_reduce(
        &self,
        program: &KernelProgram,
        dfg: &Dfg,
        g: &Graph,
        plan: &PartitionPlan,
        globals: &HashMap<String, Tensor>,
    ) -> Result<(Vec<Tensor>, RunArtifacts), CompileError> {
        let d = self.devices();
        let v = g.num_vertices();
        let spec = ShardSpec::new(v, d);
        let groups = SrcGroups::new(v, SrcGroups::CANONICAL);
        let ngroups = groups.num_groups();
        let group_owner = ShardSpec::new(ngroups, d);
        let w = program.out_width;
        let (outs, art) = self.run_devices(|dev, mb| {
            let own = spec.owned_range(dev);
            let my_groups = groups.groups_of_device(dev, d);
            // Rows this device reads: its groups' source ranges (per-task
            // gathers are source-indexed — enforced by the compatibility
            // check) plus its owned rows (the epilogue may read them,
            // e.g. self-features). The two ranges need not align: group
            // chunking is over CANONICAL, ownership over `d`.
            let src_range = if my_groups.is_empty() {
                0..0
            } else {
                let first = ShardSpec::new(v, ngroups).owned_range(my_groups.start);
                let last = ShardSpec::new(v, ngroups).owned_range(my_groups.end - 1);
                first.start..last.end
            };
            let dglobals = masked_globals(globals, v, |r| {
                src_range.contains(&r) || own.contains(&r)
            });
            let partials: Vec<Tensor> = mb.record_compute(
                &self.engines[dev],
                || {
                    let mut partials = Vec::with_capacity(my_groups.len());
                    for grp in my_groups.clone() {
                        let gp =
                            plan.filtered(g, |e| groups.group_of(g.src()[e]) == grp);
                        partials.push(self.engines[dev].accumulate_program(
                            program, g, &gp, &dglobals,
                        )?);
                    }
                    Ok(partials)
                },
                |_| 0,
            )?;
            let mut acc = Tensor::zeros(&[v, w]);
            for grp in 0..ngroups {
                let owner = group_owner.owner(grp as u32);
                let outgoing: Vec<(Vec<u32>, Vec<f32>)> = (0..d)
                    .map(|p| {
                        if owner != dev || p == dev {
                            return (Vec::new(), Vec::new());
                        }
                        // Row set implied by ownership: the receiver's
                        // owned range, contiguous, so no index vector.
                        let r = spec.owned_range(p);
                        let part = &partials[grp - my_groups.start];
                        (Vec::new(), part.data()[r.start * w..r.end * w].to_vec())
                    })
                    .collect();
                let got = mb.exchange("reduce_scatter", outgoing);
                // Exactly one contribution per group, added in ascending
                // global group order — same float sequence at every D.
                mb.record_compute(
                    &self.engines[dev],
                    || {
                        if owner == dev {
                            let part = &partials[grp - my_groups.start];
                            for r in own.clone() {
                                for (a, b) in
                                    acc.row_mut(r).iter_mut().zip(part.row(r))
                                {
                                    *a += *b;
                                }
                            }
                        } else {
                            let idx = if owner < dev { owner } else { owner - 1 };
                            let m = &got[idx];
                            assert_eq!(
                                m.payload.len(),
                                own.len() * w,
                                "reduce-scatter slice width mismatch"
                            );
                            for (i, r) in own.clone().enumerate() {
                                for (a, b) in acc
                                    .row_mut(r)
                                    .iter_mut()
                                    .zip(&m.payload[i * w..(i + 1) * w])
                                {
                                    *a += *b;
                                }
                            }
                        }
                        Ok(())
                    },
                    |()| (own.len() * w) as u64,
                )?;
            }
            mb.record_compute(
                &self.engines[dev],
                || Ok(run_epilogue(dfg, g, &dglobals, program.reduce_node, acc)),
                |outs| outs.iter().map(|t| t.numel() as u64).sum(),
            )
        })?;
        Ok((merge_vertex_outputs(&spec, v, &outs)?, art))
    }

    /// Tensor parallelism: every device runs *all* edges on its column
    /// slice of the width-carrying global, accumulator slices all-gather
    /// in ascending device order, and each device finishes with the full
    /// epilogue. Bit-identical to the single-device engine because every
    /// kernel computes output columns independently and the column
    /// concatenation is a bitwise copy.
    fn run_tensor_parallel(
        &self,
        program: &KernelProgram,
        dfg: &Dfg,
        g: &Graph,
        plan: &PartitionPlan,
        globals: &HashMap<String, Tensor>,
    ) -> Result<(Vec<Tensor>, RunArtifacts), CompileError> {
        let d = self.devices();
        let v = g.num_vertices();
        let wtotal = program.out_width;
        let cols = ShardSpec::new(wtotal, d);
        let slice_name = tp_slice_global(program, globals)
            .expect("compatibility check found a slice target");
        let (mut outs, art) = self.run_devices(|dev, mb| {
            let my_cols = cols.owned_range(dev);
            let payload: Vec<f32> = mb.record_compute(
                &self.engines[dev],
                || {
                    if my_cols.is_empty() {
                        return Ok(Vec::new());
                    }
                    let mut prog = program.clone();
                    prog.out_width = my_cols.len();
                    let mut dglobals = globals.clone();
                    dglobals.insert(
                        slice_name.clone(),
                        slice_last_dim(&globals[&slice_name], my_cols.clone()),
                    );
                    let part =
                        self.engines[dev].accumulate_program(&prog, g, plan, &dglobals)?;
                    Ok(part.data().to_vec())
                },
                |_| 0,
            )?;
            let outgoing: Vec<(Vec<u32>, Vec<f32>)> = (0..d)
                .map(|p| {
                    if p == dev {
                        (Vec::new(), Vec::new())
                    } else {
                        (Vec::new(), payload.clone())
                    }
                })
                .collect();
            let got = mb.exchange("all_gather", outgoing);
            mb.record_compute(
                &self.engines[dev],
                || {
                    let mut acc = Tensor::zeros(&[v, wtotal]);
                    for p in 0..d {
                        let r = cols.owned_range(p);
                        if r.is_empty() {
                            continue;
                        }
                        let src: &[f32] = if p == dev {
                            &payload
                        } else {
                            let idx = if p < dev { p } else { p - 1 };
                            &got[idx].payload
                        };
                        assert_eq!(src.len(), v * r.len(), "all-gather slice mismatch");
                        for row in 0..v {
                            acc.data_mut()
                                [row * wtotal + r.start..row * wtotal + r.end]
                                .copy_from_slice(
                                    &src[row * r.len()..(row + 1) * r.len()],
                                );
                        }
                    }
                    Ok(run_epilogue(dfg, g, globals, program.reduce_node, acc))
                },
                |outs| {
                    (v * wtotal) as u64
                        + outs.iter().map(|t| t.numel() as u64).sum::<u64>()
                },
            )
        })?;
        // Every device assembled the identical full accumulator and ran
        // the identical epilogue; device 0's outputs are the outputs.
        Ok((outs.swap_remove(0), art))
    }
}

/// Assembles full outputs from per-device row partitions: row `r` of every
/// output comes from the device owning `r`.
fn merge_vertex_outputs(
    spec: &ShardSpec,
    v: usize,
    per_dev: &[Vec<Tensor>],
) -> Result<Vec<Tensor>, CompileError> {
    let n = per_dev.first().map_or(0, Vec::len);
    (0..n)
        .map(|i| {
            let dims = per_dev[0][i].dims().to_vec();
            if dims.first() != Some(&v) {
                return Err(CompileError(
                    "sharded execution requires vertex-rowed outputs".into(),
                ));
            }
            let w = per_dev[0][i].numel() / v.max(1);
            let mut out = Tensor::zeros(&dims);
            for (dev, outs) in per_dev.iter().enumerate() {
                let r = spec.owned_range(dev);
                out.data_mut()[r.start * w..r.end * w]
                    .copy_from_slice(&outs[i].data()[r.start * w..r.end * w]);
            }
            Ok(out)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::execute_parallel;
    use wisegraph_graph::generate::{rmat, RmatParams};
    use wisegraph_gtask::{partition, PartitionTable};
    use wisegraph_models::ModelKind;
    use wisegraph_tensor::init;

    fn rgcn_setup() -> (Graph, Dfg, HashMap<String, Tensor>) {
        let g = rmat(&RmatParams::standard(110, 900, 41).with_edge_types(3));
        let (fi, fo) = (5, 4);
        let dfg = ModelKind::Rgcn.layer_dfg(fi, fo);
        let mut globals = HashMap::new();
        globals.insert(
            "h".to_string(),
            init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 21),
        );
        globals.insert(
            "W".to_string(),
            init::uniform_tensor(&[g.num_edge_types(), fi, fo], -1.0, 1.0, 22),
        );
        (g, dfg, globals)
    }

    fn gcn_setup() -> (Graph, Dfg, HashMap<String, Tensor>) {
        let g = rmat(&RmatParams::standard(100, 800, 43));
        let (fi, fo) = (6, 3);
        let dfg = ModelKind::Gcn.layer_dfg(fi, fo);
        let mut globals = HashMap::new();
        globals.insert(
            "h".to_string(),
            init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 23),
        );
        globals.insert("w".to_string(), init::uniform_tensor(&[fi, fo], -1.0, 1.0, 24));
        (g, dfg, globals)
    }

    fn gat_setup() -> (Graph, Dfg, HashMap<String, Tensor>) {
        let g = rmat(&RmatParams::standard(80, 500, 47));
        let (fi, fo) = (4, 3);
        let dfg = ModelKind::Gat.layer_dfg(fi, fo);
        let mut globals = HashMap::new();
        globals.insert(
            "h".to_string(),
            init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 25),
        );
        globals.insert("w".to_string(), init::uniform_tensor(&[fi, fo], -1.0, 1.0, 26));
        globals.insert(
            "a_src".to_string(),
            init::uniform_tensor(&[fo, 1], -1.0, 1.0, 27),
        );
        globals.insert(
            "a_dst".to_string(),
            init::uniform_tensor(&[fo, 1], -1.0, 1.0, 28),
        );
        (g, dfg, globals)
    }

    #[test]
    fn data_parallel_is_bitwise_identical_to_single_engine() {
        let (g, dfg, globals) = rgcn_setup();
        let plan = partition(&g, &PartitionTable::src_batch_per_type(8));
        let reference = execute_parallel(&dfg, &g, &plan, &globals, 2).unwrap();
        for devices in [1usize, 2, 4] {
            let cluster = ClusterEngine::new(devices, 2);
            let run = cluster
                .execute(&dfg, &g, &plan, &globals, PlacementKind::DataParallel)
                .unwrap();
            for (a, b) in reference.iter().zip(run.outputs.iter()) {
                assert_eq!(a.data(), b.data(), "devices {devices}");
            }
            assert!(run.exchange.is_conserved(), "devices {devices}");
            if devices > 1 {
                assert!(run.exchange.bytes_sent() > 0);
                assert_eq!(
                    cluster.stats().count(keys::COMM_BYTES_EXCHANGED),
                    run.exchange.bytes_sent()
                );
            }
        }
    }

    #[test]
    fn project_then_communicate_matches_single_engine_on_gat() {
        let (g, dfg, globals) = gat_setup();
        let plan = partition(&g, &PartitionTable::vertex_centric());
        let reference = execute_parallel(&dfg, &g, &plan, &globals, 2).unwrap();
        let dp_bytes;
        {
            let cluster = ClusterEngine::new(4, 2);
            let run = cluster
                .execute(&dfg, &g, &plan, &globals, PlacementKind::DataParallel)
                .unwrap();
            for (a, b) in reference.iter().zip(run.outputs.iter()) {
                assert_eq!(a.data(), b.data(), "data-parallel");
            }
            dp_bytes = run.exchange.bytes_sent();
        }
        for devices in [1usize, 2, 4] {
            let cluster = ClusterEngine::new(devices, 2);
            let run = cluster
                .execute(
                    &dfg,
                    &g,
                    &plan,
                    &globals,
                    PlacementKind::ProjectThenCommunicate,
                )
                .unwrap();
            for (a, b) in reference.iter().zip(run.outputs.iter()) {
                assert_eq!(a.data(), b.data(), "devices {devices}");
            }
            assert!(run.exchange.is_conserved());
        }
        // f_in = 4 raw columns vs fo + 1 = 4 projected columns: volumes
        // are comparable here; the point is both executed for real.
        assert!(dp_bytes > 0);
    }

    #[test]
    fn tensor_parallel_is_bitwise_identical_at_any_device_count() {
        for (g, dfg, globals, table) in [
            {
                let (g, dfg, gl) = gcn_setup();
                (g, dfg, gl, PartitionTable::edge_batch(64))
            },
            {
                let (g, dfg, gl) = rgcn_setup();
                (g, dfg, gl, PartitionTable::src_batch_per_type(8))
            },
        ] {
            let plan = partition(&g, &table);
            let reference = execute_parallel(&dfg, &g, &plan, &globals, 2).unwrap();
            for devices in [1usize, 2, 3, 4, 8] {
                let cluster = ClusterEngine::new(devices, 2);
                let run = cluster
                    .execute(&dfg, &g, &plan, &globals, PlacementKind::TensorParallel)
                    .unwrap();
                for (a, b) in reference.iter().zip(run.outputs.iter()) {
                    assert_eq!(a.data(), b.data(), "devices {devices}");
                }
                assert!(run.exchange.is_conserved());
            }
        }
    }

    #[test]
    fn compute_then_reduce_is_bitwise_stable_across_device_counts() {
        let (g, dfg, globals) = gcn_setup();
        let plan = partition(&g, &PartitionTable::vertex_centric());
        let reference = execute_parallel(&dfg, &g, &plan, &globals, 2).unwrap();
        let anchor = ClusterEngine::new(1, 2)
            .execute(&dfg, &g, &plan, &globals, PlacementKind::ComputeThenReduce)
            .unwrap()
            .outputs;
        // Different partial-sum order than the single engine: close, not
        // bitwise. Across device counts: bitwise, because the canonical
        // source groups fix the summation sequence.
        for (a, b) in reference.iter().zip(anchor.iter()) {
            assert!(a.allclose(b, 1e-3), "diff {}", a.max_abs_diff(b));
        }
        for devices in [2usize, 3, 4, 8] {
            let run = ClusterEngine::new(devices, 2)
                .execute(&dfg, &g, &plan, &globals, PlacementKind::ComputeThenReduce)
                .unwrap();
            for (a, b) in anchor.iter().zip(run.outputs.iter()) {
                assert_eq!(a.data(), b.data(), "devices {devices}");
            }
            assert!(run.exchange.is_conserved());
        }
    }

    #[test]
    fn incompatible_placements_are_rejected_up_front() {
        let (g, dfg, globals) = gcn_setup();
        let program = compile(&dfg, &g).unwrap();
        // GCN hoists no prologue: nothing to project before communicating.
        assert!(placement_compatible(
            &program,
            &g,
            &globals,
            PlacementKind::ProjectThenCommunicate
        )
        .is_err());
        let (g, dfg, globals) = gat_setup();
        let program = compile(&dfg, &g).unwrap();
        // GAT's segment softmax forbids splitting a destination's
        // in-edges (compute-then-reduce) or its columns (tensor-parallel).
        assert!(placement_compatible(
            &program,
            &g,
            &globals,
            PlacementKind::ComputeThenReduce
        )
        .is_err());
        assert!(placement_compatible(
            &program,
            &g,
            &globals,
            PlacementKind::TensorParallel
        )
        .is_err());
        assert_eq!(
            compatible_placements(&program, &g, &globals),
            vec![
                PlacementKind::DataParallel,
                PlacementKind::ProjectThenCommunicate
            ]
        );
        let plan = partition(&g, &PartitionTable::vertex_centric());
        let err = ClusterEngine::new(2, 1)
            .execute(&dfg, &g, &plan, &globals, PlacementKind::TensorParallel)
            .expect_err("rejected before any device thread starts");
        assert!(err.to_string().contains("tensor_parallel"), "{err}");
    }

    #[test]
    fn tp_slice_global_prefers_the_width_carrier() {
        let (g, dfg, globals) = rgcn_setup();
        let program = compile(&dfg, &g).unwrap();
        // RGCN accumulates at f_out: the rank-3 weight carries the width.
        assert_eq!(tp_slice_global(&program, &globals).as_deref(), Some("W"));
        let (g, dfg, globals) = gcn_setup();
        let program = compile(&dfg, &g).unwrap();
        // GCN accumulates raw embeddings at f_in: h carries the width.
        assert_eq!(tp_slice_global(&program, &globals).as_deref(), Some("h"));
    }

    #[test]
    fn attribution_reports_cover_every_schedule() {
        let (g, dfg, globals) = gcn_setup();
        let plan = partition(&g, &PartitionTable::vertex_centric());
        let program = compile(&dfg, &g).unwrap();
        for placement in compatible_placements(&program, &g, &globals) {
            let cluster = ClusterEngine::new(3, 2);
            cluster.set_layer(2);
            let run = cluster.execute(&dfg, &g, &plan, &globals, placement).unwrap();
            run.causal.check_pairing().expect("paired endpoints");
            // One causal edge per drained message, bytes conserved
            // against the exchange log's receive side.
            assert_eq!(
                run.causal.total_bytes(),
                run.exchange.bytes_received(),
                "{placement:?}"
            );
            assert_eq!(run.timelines.len(), 3);
            assert!(run
                .timelines
                .iter()
                .all(|tl| tl.segments.iter().all(|s| s.layer == 2)));
            let report = run.attribution().expect("analyzes");
            assert!(report.makespan > 0, "{placement:?}");
            assert_eq!(report.devices.len(), 3);
            assert!(
                report.devices.iter().map(|a| a.busy).sum::<u64>() > 0,
                "{placement:?}"
            );
            assert!(report.straggler_ranking.len() == 3);
        }
    }

    #[test]
    fn per_device_counters_and_comm_totals_are_reported() {
        let (g, dfg, globals) = rgcn_setup();
        let plan = partition(&g, &PartitionTable::src_batch_per_type(8));
        let cluster = ClusterEngine::new(2, 2);
        let run = cluster
            .execute(&dfg, &g, &plan, &globals, PlacementKind::DataParallel)
            .unwrap();
        assert_eq!(run.per_device.len(), 2);
        let edges: u64 = run
            .per_device
            .iter()
            .map(|c| c.count(keys::KERNEL_EDGES))
            .sum();
        assert_eq!(edges, g.num_edges() as u64, "every edge runs exactly once");
        let stats = cluster.stats();
        let prefixed: u64 = (0..2)
            .map(|d| {
                stats.count(&format!(
                    "{}.{}",
                    keys::device_prefix(d),
                    keys::KERNEL_EDGES
                ))
            })
            .sum();
        assert_eq!(prefixed, edges);
        assert!(stats.count(keys::COMM_MESSAGES) > 0);
        assert_eq!(stats.count(keys::COMM_DEVICES), 2);
        assert_eq!(
            stats.count(&keys::comm_collective_bytes("all_to_all")),
            run.exchange.bytes_sent()
        );
    }
}
