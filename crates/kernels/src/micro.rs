//! Composable micro-kernels (paper §5.3): an explicit kernel IR, a
//! compiler from DFG fragments, and a per-gTask CPU executor.
//!
//! "WiseGraph prepares multiple micro-kernels for data loading and
//! computation, with each micro-kernel representing a specific operation.
//! By composing these micro-kernels, we can generate a GPU kernel with
//! operations partitioned in." This module is that composition made
//! concrete: [`compile`] turns the edge-dependent part of a DFG into a
//! [`KernelProgram`] of micro-kernels executed once per gTask (data
//! loading → compute → scatter), plus an *epilogue* of whole-graph
//! operations (degree normalization, shared projections, joins) evaluated
//! once after all tasks.
//!
//! The executor is numerically validated against the reference DFG
//! interpreter; the cost model in [`crate::generate`] prices the same
//! composition analytically.

use std::collections::HashMap;
use wisegraph_dfg::interp::unique_and_map;
use wisegraph_dfg::{Dfg, NodeId, OpKind};
use wisegraph_dfg::op::LEAKY_SLOPE;
use wisegraph_graph::{AttrKind, Graph};
use wisegraph_gtask::PartitionPlan;
use wisegraph_obs::{keys, span, Class, Counters};
use wisegraph_tensor::{ops, Tensor, Workspace};

/// A virtual register holding one per-task value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Reg(pub usize);

/// Element-wise micro-kernel operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EwOp {
    /// Addition of two registers.
    Add,
    /// Multiplication of two registers.
    Mul,
    /// ReLU of one register.
    Relu,
    /// Leaky ReLU of one register.
    LeakyRelu,
}

/// One micro-kernel: a data-loading, compute, or store step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MicroKernel {
    /// Load the task's stream of an edge attribute.
    LoadStream {
        /// Which attribute.
        attr: AttrKind,
        /// Destination register (index stream).
        out: Reg,
    },
    /// Deduplicate a stream into unique values and a position map.
    Unique {
        /// Source stream register.
        stream: Reg,
        /// Unique values (index stream).
        values: Reg,
        /// Edge → position map (index stream).
        map: Reg,
    },
    /// Gather rows of a global tensor by an index register.
    GatherRows {
        /// Global tensor name.
        src: String,
        /// Row indices.
        idx: Reg,
        /// Gathered rows.
        out: Reg,
    },
    /// Gather rows of a register tensor by an index register.
    GatherRegRows {
        /// Source tensor register.
        src: Reg,
        /// Row indices.
        idx: Reg,
        /// Gathered rows.
        out: Reg,
    },
    /// 2-D gather from a register tensor (`out[i] = src[i1[i], i2[i]]`).
    GatherReg2D {
        /// Source rank-3 tensor register.
        src: Reg,
        /// First index stream.
        idx1: Reg,
        /// Second index stream.
        idx2: Reg,
        /// Result.
        out: Reg,
    },
    /// 2-D gather from a global rank-3 tensor.
    Gather2DGlobal {
        /// Global tensor name.
        src: String,
        /// First index stream.
        idx1: Reg,
        /// Second index stream.
        idx2: Reg,
        /// Result.
        out: Reg,
    },
    /// All-pairs product with a register weight: `out[u, t] = x[u] @ w[t]`.
    PairwiseReg {
        /// Unique input rows `[u, f]`.
        x: Reg,
        /// Per-task weights `[t, f, f']`.
        w: Reg,
        /// Result `[u, t, f']`.
        out: Reg,
    },
    /// Dense product of a register with a global weight: `out = x @ W`.
    MatMatGlobal {
        /// Input rows.
        x: Reg,
        /// Global weight name.
        w: String,
        /// Result.
        out: Reg,
    },
    /// Row-wise product with per-row weights: `out[i] = x[i] @ w[i]`.
    PerRowVecMat {
        /// Input rows `[n, f]`.
        x: Reg,
        /// Per-row weights `[n, f, f']`.
        w: Reg,
        /// Result `[n, f']`.
        out: Reg,
    },
    /// All-pairs product `out[u, t] = x[u] @ w[t]` with a global rank-3
    /// weight.
    PairwiseGlobal {
        /// Unique input rows `[u, f]`.
        x: Reg,
        /// Global weight name `[t, f, f']`.
        w: String,
        /// Result `[u, t, f']`.
        out: Reg,
    },
    /// Gather the per-row slices of a global rank-3 tensor: `out[i] =
    /// W[idx[i]]`.
    GatherWeight {
        /// Global rank-3 tensor name.
        src: String,
        /// Slice indices.
        idx: Reg,
        /// Result `[n, f, f']`.
        out: Reg,
    },
    /// Element-wise arithmetic.
    Elementwise {
        /// Operation.
        op: EwOp,
        /// First operand.
        a: Reg,
        /// Second operand (binary ops only).
        b: Option<Reg>,
        /// Result.
        out: Reg,
    },
    /// Drops a trailing singleton column: `[n, 1]` → `[n]`.
    Squeeze {
        /// Input register.
        x: Reg,
        /// Result register.
        out: Reg,
    },
    /// Softmax over the task's rows grouped by a segment stream. Only
    /// valid when the plan is destination-complete (every segment's rows
    /// live in one task).
    SegmentSoftmax {
        /// Rank-1 scores.
        scores: Reg,
        /// Segment ids (destination stream).
        seg: Reg,
        /// Result.
        out: Reg,
    },
    /// Scales row `i` of `x` by scalar `s[i]`.
    ScaleRows {
        /// Row data.
        x: Reg,
        /// Per-row scalars (rank-1).
        s: Reg,
        /// Result.
        out: Reg,
    },
    /// Scatter-add the register's rows into the task's global output:
    /// `out_global[idx[i]] += data[i]`.
    ScatterAdd {
        /// Row data.
        data: Reg,
        /// Destination rows.
        idx: Reg,
    },
}

/// A compiled kernel: micro-kernels run once per gTask, writing into a
/// shared `[rows, width]` accumulator.
#[derive(Clone, Debug)]
pub struct KernelProgram {
    /// The composed micro-kernels, in execution order.
    pub ops: Vec<MicroKernel>,
    /// Number of virtual registers.
    pub num_regs: usize,
    /// Output accumulator rows (`|V|`).
    pub out_rows: usize,
    /// Output accumulator width.
    pub out_width: usize,
    /// The DFG node whose value the accumulator holds (the `IndexAdd`).
    pub reduce_node: NodeId,
    /// Edge-independent intermediate nodes precomputed once before the
    /// tasks run, exposed to the per-task program as pseudo-globals named
    /// `__pre_<node>`.
    pub prologue: Vec<NodeId>,
    /// `true` when the program contains a per-destination normalization
    /// (segment softmax): the plan must then be destination-complete
    /// (every destination's in-edges in exactly one task).
    pub requires_dst_complete: bool,
}

/// Pseudo-global name of a precomputed (prologue) node.
pub fn prologue_name(id: NodeId) -> String {
    format!("__pre_{}", id.0)
}

/// Resolves a dense-evaluation input to a reference: a previously computed
/// value, or a global tensor for `Input` nodes. Avoids cloning operands
/// just to read them.
fn dense_input<'a>(
    dfg: &Dfg,
    globals: &'a HashMap<String, Tensor>,
    values: &'a HashMap<NodeId, Tensor>,
    p: NodeId,
) -> &'a Tensor {
    values.get(&p).unwrap_or_else(|| match &dfg.node(p).kind {
        OpKind::Input { name, .. } => &globals[name],
        other => panic!("dense input {other:?} unavailable"),
    })
}

/// A per-task register value.
#[derive(Clone, Debug)]
pub(crate) enum RegValue {
    Tensor(Tensor),
    Stream(Vec<u32>),
}

/// Exact work totals accumulated while a worker executes tasks. The
/// `tasks`/`edges`/`flops`/`bytes_*` fields are pure functions of program
/// and inputs ([`Class::Work`]), independent of how tasks are spread over
/// workers *and* of whether the interpreter or the fused code path ran
/// them. The `fused_*` fields describe how the work was executed
/// (interpreter vs. [`crate::fused`] segments) and are therefore
/// [`Class::Resource`].
#[derive(Default)]
pub(crate) struct KernelWork {
    pub(crate) tasks: u64,
    pub(crate) edges: u64,
    pub(crate) flops: u64,
    pub(crate) bytes_gathered: u64,
    pub(crate) bytes_scattered: u64,
    pub(crate) fused_tasks: u64,
    pub(crate) fused_micro_ops: u64,
}

/// Per-worker execution state: a register file reused across tasks plus the
/// scratch-buffer pool ([`Workspace`]) backing the register values.
///
/// One `TaskWorkspace` is owned by exactly one worker; values left in the
/// registers after a task are recycled into the pool when the next task
/// starts, so a worker processing thousands of same-shaped tasks allocates
/// only during the first one.
#[derive(Default)]
pub struct TaskWorkspace {
    pub(crate) regs: Vec<Option<RegValue>>,
    pub(crate) ws: Workspace,
    pub(crate) work: KernelWork,
}

impl TaskWorkspace {
    /// Creates an empty task workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter snapshot: the buffer pool's `pool.*` resource counters plus
    /// this worker's `kernel.*` work totals (tasks, edges, FLOPs, bytes
    /// gathered/scattered).
    pub fn stats(&self) -> Counters {
        let mut c = self.ws.stats();
        c.add_class(keys::KERNEL_TASKS, self.work.tasks, Class::Work);
        c.add_class(keys::KERNEL_EDGES, self.work.edges, Class::Work);
        c.add_class(keys::KERNEL_FLOPS, self.work.flops, Class::Work);
        c.add_class(keys::KERNEL_BYTES_GATHERED, self.work.bytes_gathered, Class::Work);
        c.add_class(keys::KERNEL_BYTES_SCATTERED, self.work.bytes_scattered, Class::Work);
        // How the work was executed (fused vs. interpreted) is a resource
        // property: identical at a fixed dispatch mode, but free to differ
        // between the interpreter baseline and the fused path.
        c.add_class(keys::KERNEL_FUSED_TASKS, self.work.fused_tasks, Class::Resource);
        c.add_class(
            keys::KERNEL_FUSED_MICRO_OPS,
            self.work.fused_micro_ops,
            Class::Resource,
        );
        c
    }

    /// Clears the register file for a new task, recycling held values.
    pub(crate) fn prepare(&mut self, num_regs: usize) {
        let TaskWorkspace { regs, ws, work: _ } = self;
        for slot in regs.iter_mut() {
            match slot.take() {
                Some(RegValue::Tensor(t)) => ws.recycle(t),
                Some(RegValue::Stream(s)) => ws.give_u32(s),
                None => {}
            }
        }
        regs.resize_with(num_regs, || None);
    }
}

/// Reads a tensor register by reference.
pub(crate) fn reg_tensor(regs: &[Option<RegValue>], r: Reg) -> &Tensor {
    match regs[r.0].as_ref().expect("register assigned") {
        RegValue::Tensor(t) => t,
        RegValue::Stream(_) => panic!("expected tensor in register {r:?}"),
    }
}

/// Reads a stream register by reference.
pub(crate) fn reg_stream(regs: &[Option<RegValue>], r: Reg) -> &[u32] {
    match regs[r.0].as_ref().expect("register assigned") {
        RegValue::Stream(s) => s,
        RegValue::Tensor(_) => panic!("expected stream in register {r:?}"),
    }
}

/// Writes a register, recycling whatever value it held before.
pub(crate) fn set_reg(regs: &mut [Option<RegValue>], ws: &mut Workspace, r: Reg, v: RegValue) {
    match regs[r.0].replace(v) {
        Some(RegValue::Tensor(t)) => ws.recycle(t),
        Some(RegValue::Stream(s)) => ws.give_u32(s),
        None => {}
    }
}

/// Compilation error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError(pub String);

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "micro-kernel compile error: {}", self.0)
    }
}

impl std::error::Error for CompileError {}

/// Edge-dependence: reachable from an edge-attribute stream *without*
/// passing through an `IndexAdd` (the reduction re-anchors data at the
/// vertex set, so its consumers run in the epilogue).
fn edge_dependence(dfg: &Dfg) -> Vec<bool> {
    let mut edge_dep = vec![false; dfg.len()];
    for (i, node) in dfg.nodes().iter().enumerate() {
        if node.kind.is_index_stream() {
            edge_dep[i] = true;
        }
        if node.inputs.iter().any(|p| {
            edge_dep[p.0] && !matches!(dfg.node(*p).kind, OpKind::IndexAdd { .. })
        }) {
            edge_dep[i] = true;
        }
    }
    edge_dep
}

/// Splits the DFG at its reduction: nodes that depend on edge streams and
/// feed the single `IndexAdd` become the per-task program; everything else
/// (degree normalization, shared projections, joins with edge-independent
/// branches) is the epilogue, evaluated once.
pub fn compile(dfg: &Dfg, g: &Graph) -> Result<KernelProgram, CompileError> {
    let live = dfg.live_set();
    let edge_dep = edge_dependence(dfg);
    // The unique live IndexAdd is the reduction frontier.
    let reduces: Vec<usize> = dfg
        .nodes()
        .iter()
        .enumerate()
        .filter(|(i, n)| live[*i] && matches!(n.kind, OpKind::IndexAdd { .. }))
        .map(|(i, _)| i)
        .collect();
    let [reduce] = reduces.as_slice() else {
        return Err(CompileError(format!(
            "expected exactly one live IndexAdd, found {}",
            reduces.len()
        )));
    };
    let reduce = NodeId(*reduce);
    // No edge-dependent node may escape except through the reduction.
    let consumers = dfg.consumers();
    for (i, node) in dfg.nodes().iter().enumerate() {
        if !live[i] || !edge_dep[i] || i == reduce.0 {
            continue;
        }
        let _ = node;
        let all_edge_dep_consumers = consumers[i].iter().all(|c| edge_dep[c.0]);
        if !all_edge_dep_consumers || dfg.outputs().contains(&NodeId(i)) {
            return Err(CompileError(format!(
                "edge-dependent node {i} escapes without passing the reduction"
            )));
        }
    }

    let mut ops_out: Vec<MicroKernel> = Vec::new();
    let mut reg_of: HashMap<NodeId, Reg> = HashMap::new();
    let mut prologue: Vec<NodeId> = Vec::new();
    let mut requires_dst_complete = false;
    let mut next_reg = 0usize;
    let mut alloc = || {
        let r = Reg(next_reg);
        next_reg += 1;
        r
    };
    // A per-task operand is either a global tensor (model input), a
    // precomputed edge-independent intermediate (prologue pseudo-global),
    // or a task-local register.
    enum Operand {
        Global(String),
        Register(Reg),
    }
    let resolve = |p: NodeId,
                       reg_of: &HashMap<NodeId, Reg>,
                       prologue: &mut Vec<NodeId>|
     -> Operand {
        if let Some(&r) = reg_of.get(&p) {
            return Operand::Register(r);
        }
        if let OpKind::Input { name, .. } = &dfg.node(p).kind {
            return Operand::Global(name.clone());
        }
        // Edge-independent intermediate: precompute once.
        if !prologue.contains(&p) {
            prologue.push(p);
        }
        Operand::Global(prologue_name(p))
    };
    // Unique streams get a values/map register pair, allocated lazily.
    let mut unique_regs: HashMap<AttrKind, (Reg, Reg)> = HashMap::new();

    for (i, node) in dfg.nodes().iter().enumerate() {
        let id = NodeId(i);
        if !live[i] || !edge_dep[i] || i > reduce.0 {
            continue;
        }
        match &node.kind {
            OpKind::EdgeAttr(a) => {
                let out = alloc();
                ops_out.push(MicroKernel::LoadStream { attr: *a, out });
                reg_of.insert(id, out);
            }
            OpKind::UniqueValues(a) | OpKind::UniqueMap(a) => {
                let (values, map) = *unique_regs.entry(*a).or_insert_with(|| {
                    let stream = alloc();
                    let values = alloc();
                    let map = alloc();
                    ops_out.push(MicroKernel::LoadStream { attr: *a, out: stream });
                    ops_out.push(MicroKernel::Unique {
                        stream,
                        values,
                        map,
                    });
                    (values, map)
                });
                reg_of.insert(
                    id,
                    if matches!(node.kind, OpKind::UniqueValues(_)) {
                        values
                    } else {
                        map
                    },
                );
            }
            OpKind::Index => {
                let idx = reg_of[&node.inputs[1]];
                let out = alloc();
                let data = node.inputs[0];
                let rank = dfg.node(data).shape.len();
                match resolve(data, &reg_of, &mut prologue) {
                    Operand::Global(src) if rank == 2 => {
                        ops_out.push(MicroKernel::GatherRows { src, idx, out });
                    }
                    Operand::Global(src) => {
                        ops_out.push(MicroKernel::GatherWeight { src, idx, out });
                    }
                    Operand::Register(src) => {
                        ops_out.push(MicroKernel::GatherRegRows { src, idx, out });
                    }
                }
                reg_of.insert(id, out);
            }
            OpKind::Index2D => {
                let idx1 = reg_of[&node.inputs[1]];
                let idx2 = reg_of[&node.inputs[2]];
                let out = alloc();
                match resolve(node.inputs[0], &reg_of, &mut prologue) {
                    Operand::Global(src) => ops_out.push(MicroKernel::Gather2DGlobal {
                        src,
                        idx1,
                        idx2,
                        out,
                    }),
                    Operand::Register(src) => ops_out.push(MicroKernel::GatherReg2D {
                        src,
                        idx1,
                        idx2,
                        out,
                    }),
                }
                reg_of.insert(id, out);
            }
            OpKind::Linear => {
                let x = *reg_of.get(&node.inputs[0]).ok_or_else(|| {
                    CompileError("Linear lhs must be task-local".into())
                })?;
                let w = match resolve(node.inputs[1], &reg_of, &mut prologue) {
                    Operand::Global(name) => name,
                    Operand::Register(_) => {
                        return Err(CompileError(
                            "Linear weight must be edge-independent".into(),
                        ))
                    }
                };
                let out = alloc();
                ops_out.push(MicroKernel::MatMatGlobal { x, w, out });
                reg_of.insert(id, out);
            }
            OpKind::PerEdgeLinear => {
                let x = reg_of[&node.inputs[0]];
                let w = reg_of[&node.inputs[1]];
                let out = alloc();
                ops_out.push(MicroKernel::PerRowVecMat { x, w, out });
                reg_of.insert(id, out);
            }
            OpKind::PairwiseLinear => {
                let x = *reg_of.get(&node.inputs[0]).ok_or_else(|| {
                    CompileError("PairwiseLinear lhs must be task-local".into())
                })?;
                let out = alloc();
                match resolve(node.inputs[1], &reg_of, &mut prologue) {
                    Operand::Global(w) => {
                        ops_out.push(MicroKernel::PairwiseGlobal { x, w, out })
                    }
                    Operand::Register(w) => {
                        ops_out.push(MicroKernel::PairwiseReg { x, w, out })
                    }
                }
                reg_of.insert(id, out);
            }
            OpKind::Add | OpKind::Mul | OpKind::Relu | OpKind::LeakyRelu => {
                let a = reg_of[&node.inputs[0]];
                let b = node.inputs.get(1).map(|p| reg_of[p]);
                let op = match node.kind {
                    OpKind::Add => EwOp::Add,
                    OpKind::Mul => EwOp::Mul,
                    OpKind::Relu => EwOp::Relu,
                    _ => EwOp::LeakyRelu,
                };
                let out = alloc();
                ops_out.push(MicroKernel::Elementwise { op, a, b, out });
                reg_of.insert(id, out);
            }
            OpKind::SqueezeCol => {
                let x = reg_of[&node.inputs[0]];
                let out = alloc();
                ops_out.push(MicroKernel::Squeeze { x, out });
                reg_of.insert(id, out);
            }
            OpKind::SegmentSoftmax => {
                let scores = reg_of[&node.inputs[0]];
                let seg = reg_of[&node.inputs[1]];
                let out = alloc();
                ops_out.push(MicroKernel::SegmentSoftmax { scores, seg, out });
                requires_dst_complete = true;
                reg_of.insert(id, out);
            }
            OpKind::ScaleRowsByScalar => {
                let x = reg_of[&node.inputs[0]];
                let sreg = reg_of[&node.inputs[1]];
                let out = alloc();
                ops_out.push(MicroKernel::ScaleRows { x, s: sreg, out });
                reg_of.insert(id, out);
            }
            OpKind::IndexAdd { .. } if id == reduce => {
                let data = reg_of[&node.inputs[0]];
                let idx = reg_of[&node.inputs[1]];
                ops_out.push(MicroKernel::ScatterAdd { data, idx });
            }
            other => {
                return Err(CompileError(format!(
                    "operation {other:?} is not supported in per-task programs"
                )));
            }
        }
    }

    // Output shape from the reduction node.
    let out_width = match dfg.node(reduce).shape.last() {
        Some(&wisegraph_dfg::Dim::Lit(w)) => w,
        _ => {
            return Err(CompileError(
                "reduction output must have a literal width".into(),
            ))
        }
    };
    Ok(KernelProgram {
        ops: ops_out,
        num_regs: next_reg,
        out_rows: g.num_vertices(),
        out_width,
        reduce_node: reduce,
        prologue,
        requires_dst_complete,
    })
}

/// All-pairs product `out[u, t] = x[u] @ w[t]` into a zeroed `u * t * f'`
/// buffer.
fn pairwise_into(x: &Tensor, w: &Tensor, out: &mut [f32]) {
    let (u, f) = (x.dims()[0], x.dims()[1]);
    let (t, fo) = (w.dims()[0], w.dims()[2]);
    assert_eq!(out.len(), u * t * fo, "pairwise output buffer mismatch");
    for a in 0..u {
        for b in 0..t {
            for k in 0..f {
                let x_ak = x.data()[a * f + k];
                if x_ak == 0.0 {
                    continue;
                }
                let wrow = &w.data()[(b * f + k) * fo..(b * f + k + 1) * fo];
                let orow = &mut out[(a * t + b) * fo..(a * t + b + 1) * fo];
                for (o, &w_kj) in orow.iter_mut().zip(wrow) {
                    *o += x_ak * w_kj;
                }
            }
        }
    }
}

/// All-pairs product `out[u, t] = x[u] @ w[t]` for `[u, f]` × `[t, f, f']`.
fn pairwise(x: &Tensor, w: &Tensor) -> Tensor {
    let (u, t, fo) = (x.dims()[0], w.dims()[0], w.dims()[2]);
    let mut data = vec![0.0f32; u * t * fo];
    pairwise_into(x, w, &mut data);
    Tensor::from_vec(data, &[u, t, fo])
}

/// Executes the compiled program for one task's edges, accumulating into
/// `out`, with a fresh [`TaskWorkspace`]. Thin wrapper over
/// [`run_task_ws`]; callers executing many tasks should hold a
/// `TaskWorkspace` and call that directly.
///
/// # Panics
///
/// Panics if a register is used before assignment or a global tensor is
/// missing (compilation guarantees well-formed programs for valid inputs).
pub fn run_task(
    program: &KernelProgram,
    g: &Graph,
    globals: &HashMap<String, Tensor>,
    edges: &[usize],
    out: &mut Tensor,
) {
    run_task_ws(program, g, globals, edges, out, &mut TaskWorkspace::new());
}

/// Executes the compiled program for one task's edges, accumulating into
/// `out` and drawing every register value from `tws`.
///
/// Bit-identical to [`run_task`]: pooled buffers are zero-filled on
/// checkout and all kernels are the same `_into` routines the allocating
/// ops wrap.
///
/// # Panics
///
/// Panics if a register is used before assignment or a global tensor is
/// missing (compilation guarantees well-formed programs for valid inputs).
pub fn run_task_ws(
    program: &KernelProgram,
    g: &Graph,
    globals: &HashMap<String, Tensor>,
    edges: &[usize],
    out: &mut Tensor,
    tws: &mut TaskWorkspace,
) {
    let mut sp = span!("kernel.task", edges = edges.len(), ops = program.ops.len());
    tws.prepare(program.num_regs);
    tws.work.tasks += 1;
    tws.work.edges += edges.len() as u64;
    let flops_before = tws.work.flops;
    for op in &program.ops {
        exec_op(program, op, g, globals, edges, out, tws);
    }
    sp.arg("flops", tws.work.flops - flops_before);
}

/// Executes the compiled program for one task's edges exactly like
/// [`run_task_ws`], additionally recording into `shadow` every accumulator
/// row the task's `ScatterAdd` stores touch, as `(row, task)` pairs in
/// store order. The shadow-memory sanitizer (`ExecMode::Sanitize` in
/// [`crate::engine`]) merges these records into a per-cell last-writer map
/// after the workers join and cross-checks them against the engine's merge
/// contract. Every instruction runs through the interpreter's own
/// [`exec_op`] step, so outputs stay bit-identical to the unshadowed path.
///
/// # Panics
///
/// Panics under the same conditions as [`run_task_ws`].
#[allow(clippy::too_many_arguments)]
pub fn run_task_ws_shadow(
    program: &KernelProgram,
    g: &Graph,
    globals: &HashMap<String, Tensor>,
    edges: &[usize],
    out: &mut Tensor,
    tws: &mut TaskWorkspace,
    task: usize,
    shadow: &mut Vec<(u32, u32)>,
) {
    let mut sp = span!(
        "kernel.task.sanitize",
        edges = edges.len(),
        ops = program.ops.len()
    );
    tws.prepare(program.num_regs);
    tws.work.tasks += 1;
    tws.work.edges += edges.len() as u64;
    let flops_before = tws.work.flops;
    for op in &program.ops {
        exec_op(program, op, g, globals, edges, out, tws);
        if let MicroKernel::ScatterAdd { idx, .. } = op {
            for &row in reg_stream(&tws.regs, *idx) {
                shadow.push((row, task as u32));
            }
        }
    }
    sp.arg("flops", tws.work.flops - flops_before);
}

/// Executes a single micro-kernel instruction against the task workspace:
/// the shared interpreter step behind [`run_task_ws`], also used for the
/// non-fused segments of [`crate::fused::run_task_fused`].
pub(crate) fn exec_op(
    program: &KernelProgram,
    op: &MicroKernel,
    g: &Graph,
    globals: &HashMap<String, Tensor>,
    edges: &[usize],
    out: &mut Tensor,
    tws: &mut TaskWorkspace,
) {
    let TaskWorkspace { regs, ws, work } = tws;
    {
        match op {
            MicroKernel::LoadStream { attr, out } => {
                let mut s = ws.take_u32(edges.len());
                for (slot, &e) in s.iter_mut().zip(edges.iter()) {
                    *slot = g.edge_attr(*attr, e) as u32;
                }
                work.bytes_gathered += 4 * edges.len() as u64;
                set_reg(regs, ws, *out, RegValue::Stream(s));
            }
            MicroKernel::Unique {
                stream: s,
                values,
                map,
            } => {
                let (u, m) = unique_and_map(reg_stream(regs, *s));
                set_reg(regs, ws, *values, RegValue::Stream(u));
                set_reg(regs, ws, *map, RegValue::Stream(m));
            }
            MicroKernel::GatherRows { src, idx, out } => {
                let t;
                {
                    let srct = &globals[src];
                    let i = reg_stream(regs, *idx);
                    let n = srct.dims()[1];
                    let mut buf = ws.take(i.len() * n);
                    ops::gather_rows_into(srct, i, &mut buf);
                    work.bytes_gathered += (4 * i.len() * n) as u64;
                    t = Tensor::from_vec(buf, &[i.len(), n]);
                }
                set_reg(regs, ws, *out, RegValue::Tensor(t));
            }
            MicroKernel::GatherRegRows { src, idx, out } => {
                let t;
                {
                    let srct = reg_tensor(regs, *src);
                    let i = reg_stream(regs, *idx);
                    let n = srct.dims()[1];
                    let mut buf = ws.take(i.len() * n);
                    ops::gather_rows_into(srct, i, &mut buf);
                    work.bytes_gathered += (4 * i.len() * n) as u64;
                    t = Tensor::from_vec(buf, &[i.len(), n]);
                }
                set_reg(regs, ws, *out, RegValue::Tensor(t));
            }
            MicroKernel::GatherReg2D {
                src,
                idx1,
                idx2,
                out,
            } => {
                let t;
                {
                    let srct = reg_tensor(regs, *src);
                    let (d1, rest): (usize, usize) =
                        (srct.dims()[1], srct.dims()[2..].iter().product());
                    let i1 = reg_stream(regs, *idx1);
                    let i2 = reg_stream(regs, *idx2);
                    let mut data = ws.take(i1.len() * rest);
                    for (i, (&a, &b)) in i1.iter().zip(i2.iter()).enumerate() {
                        let off = (a as usize * d1 + b as usize) * rest;
                        data[i * rest..(i + 1) * rest]
                            .copy_from_slice(&srct.data()[off..off + rest]);
                    }
                    work.bytes_gathered += (4 * i1.len() * rest) as u64;
                    t = Tensor::from_vec(data, &[i1.len(), rest]);
                }
                set_reg(regs, ws, *out, RegValue::Tensor(t));
            }
            MicroKernel::GatherWeight { src, idx, out } => {
                let t;
                {
                    let w = &globals[src];
                    let slice: usize = w.dims()[1..].iter().product();
                    let i = reg_stream(regs, *idx);
                    let mut data = ws.take(i.len() * slice);
                    for (n, &ti) in i.iter().enumerate() {
                        let off = ti as usize * slice;
                        data[n * slice..(n + 1) * slice]
                            .copy_from_slice(&w.data()[off..off + slice]);
                    }
                    work.bytes_gathered += (4 * i.len() * slice) as u64;
                    let mut dims = vec![i.len()];
                    dims.extend_from_slice(&w.dims()[1..]);
                    t = Tensor::from_vec(data, &dims);
                }
                set_reg(regs, ws, *out, RegValue::Tensor(t));
            }
            MicroKernel::Gather2DGlobal {
                src,
                idx1,
                idx2,
                out,
            } => {
                let t;
                {
                    let srct = &globals[src];
                    let (d1, rest): (usize, usize) =
                        (srct.dims()[1], srct.dims()[2..].iter().product());
                    let i1 = reg_stream(regs, *idx1);
                    let i2 = reg_stream(regs, *idx2);
                    let mut data = ws.take(i1.len() * rest);
                    for (i, (&a, &b)) in i1.iter().zip(i2.iter()).enumerate() {
                        let off = (a as usize * d1 + b as usize) * rest;
                        data[i * rest..(i + 1) * rest]
                            .copy_from_slice(&srct.data()[off..off + rest]);
                    }
                    work.bytes_gathered += (4 * i1.len() * rest) as u64;
                    t = Tensor::from_vec(data, &[i1.len(), rest]);
                }
                set_reg(regs, ws, *out, RegValue::Tensor(t));
            }
            MicroKernel::PairwiseReg { x, w, out } => {
                let t;
                {
                    let xv = reg_tensor(regs, *x);
                    let wv = reg_tensor(regs, *w);
                    let (u, td, fo) = (xv.dims()[0], wv.dims()[0], wv.dims()[2]);
                    let mut buf = ws.take(u * td * fo);
                    pairwise_into(xv, wv, &mut buf);
                    work.flops += (2 * u * xv.dims()[1] * td * fo) as u64;
                    t = Tensor::from_vec(buf, &[u, td, fo]);
                }
                set_reg(regs, ws, *out, RegValue::Tensor(t));
            }
            MicroKernel::MatMatGlobal { x, w, out } => {
                let t;
                {
                    let xv = reg_tensor(regs, *x);
                    let wt = &globals[w];
                    let (m, n) = (xv.dims()[0], wt.dims()[1]);
                    let mut buf = ws.take(m * n);
                    ops::matmul_into(xv, wt, &mut buf);
                    work.flops += (2 * m * xv.dims()[1] * n) as u64;
                    t = Tensor::from_vec(buf, &[m, n]);
                }
                set_reg(regs, ws, *out, RegValue::Tensor(t));
            }
            MicroKernel::PerRowVecMat { x, w, out } => {
                let t;
                {
                    let xv = reg_tensor(regs, *x);
                    let wv = reg_tensor(regs, *w);
                    let (n, f) = (xv.dims()[0], xv.dims()[1]);
                    let fo = wv.dims()[2];
                    let mut data = ws.take(n * fo);
                    for i in 0..n {
                        for k in 0..f {
                            let x_ik = xv.data()[i * f + k];
                            if x_ik == 0.0 {
                                continue;
                            }
                            let wrow =
                                &wv.data()[(i * f + k) * fo..(i * f + k + 1) * fo];
                            for (o, &w_kj) in
                                data[i * fo..(i + 1) * fo].iter_mut().zip(wrow)
                            {
                                *o += x_ik * w_kj;
                            }
                        }
                    }
                    // Nominal FLOPs (the zero-skip above is an execution
                    // shortcut, not less work in the model).
                    work.flops += (2 * n * f * fo) as u64;
                    t = Tensor::from_vec(data, &[n, fo]);
                }
                set_reg(regs, ws, *out, RegValue::Tensor(t));
            }
            MicroKernel::PairwiseGlobal { x, w, out } => {
                let t;
                {
                    let xv = reg_tensor(regs, *x);
                    let wv = &globals[w];
                    let (u, td, fo) = (xv.dims()[0], wv.dims()[0], wv.dims()[2]);
                    let mut buf = ws.take(u * td * fo);
                    pairwise_into(xv, wv, &mut buf);
                    work.flops += (2 * u * xv.dims()[1] * td * fo) as u64;
                    t = Tensor::from_vec(buf, &[u, td, fo]);
                }
                set_reg(regs, ws, *out, RegValue::Tensor(t));
            }
            MicroKernel::Elementwise { op, a, b, out } => {
                let t;
                {
                    let av = reg_tensor(regs, *a);
                    let mut buf = ws.take(av.numel());
                    match (op, b) {
                        (EwOp::Add, Some(b)) => {
                            ops::add_into(av, reg_tensor(regs, *b), &mut buf)
                        }
                        (EwOp::Mul, Some(b)) => {
                            ops::mul_into(av, reg_tensor(regs, *b), &mut buf)
                        }
                        (EwOp::Relu, _) => ops::relu_into(av, &mut buf),
                        (EwOp::LeakyRelu, _) => {
                            ops::leaky_relu_into(av, LEAKY_SLOPE, &mut buf)
                        }
                        _ => panic!("binary elementwise without second operand"),
                    }
                    work.flops += av.numel() as u64;
                    t = Tensor::from_vec(buf, av.dims());
                }
                set_reg(regs, ws, *out, RegValue::Tensor(t));
            }
            MicroKernel::Squeeze { x, out } => {
                let t;
                {
                    let xv = reg_tensor(regs, *x);
                    let mut buf = ws.take(xv.numel());
                    buf.copy_from_slice(xv.data());
                    t = Tensor::from_vec(buf, &[xv.dims()[0]]);
                }
                set_reg(regs, ws, *out, RegValue::Tensor(t));
            }
            MicroKernel::SegmentSoftmax { scores, seg, out } => {
                let t;
                {
                    let sc = reg_tensor(regs, *scores);
                    let segs = reg_stream(regs, *seg);
                    let max_seg =
                        segs.iter().copied().max().unwrap_or(0) as usize + 1;
                    let mut buf = ws.take(segs.len());
                    ops::segment_softmax_into(sc, segs, max_seg, &mut buf);
                    // max + exp + sum + divide passes, ~5 ops per element.
                    work.flops += 5 * segs.len() as u64;
                    t = Tensor::from_vec(buf, &[segs.len()]);
                }
                set_reg(regs, ws, *out, RegValue::Tensor(t));
            }
            MicroKernel::ScaleRows { x, s, out } => {
                let t;
                {
                    let xv = reg_tensor(regs, *x);
                    let sv = reg_tensor(regs, *s);
                    let mut buf = ws.take(xv.numel());
                    ops::scale_rows_into(xv, sv, &mut buf);
                    work.flops += xv.numel() as u64;
                    t = Tensor::from_vec(buf, xv.dims());
                }
                set_reg(regs, ws, *out, RegValue::Tensor(t));
            }
            MicroKernel::ScatterAdd { data, idx } => {
                let d = reg_tensor(regs, *data);
                let i = reg_stream(regs, *idx);
                let width = program.out_width;
                for (row, &dst) in i.iter().enumerate() {
                    let orow = out.row_mut(dst as usize);
                    let drow = &d.data()[row * width..(row + 1) * width];
                    for (o, &v) in orow.iter_mut().zip(drow) {
                        *o += v;
                    }
                }
                work.flops += (i.len() * width) as u64;
                work.bytes_scattered += (4 * i.len() * width) as u64;
            }
        }
    }
}

/// Register data-flow of one micro-kernel instruction: `(reads, writes)`.
///
/// The single source of truth for which virtual registers an instruction
/// consumes and produces — used by the fusion matcher in [`crate::fused`]
/// and re-exported through `wisegraph-analysis` for the K-code passes.
pub fn accesses(op: &MicroKernel) -> (Vec<Reg>, Vec<Reg>) {
    match op {
        MicroKernel::LoadStream { out, .. } => (vec![], vec![*out]),
        MicroKernel::Unique { stream, values, map } => {
            (vec![*stream], vec![*values, *map])
        }
        MicroKernel::GatherRows { idx, out, .. }
        | MicroKernel::GatherWeight { idx, out, .. } => (vec![*idx], vec![*out]),
        MicroKernel::GatherRegRows { src, idx, out } => {
            (vec![*src, *idx], vec![*out])
        }
        MicroKernel::GatherReg2D {
            src,
            idx1,
            idx2,
            out,
        } => (vec![*src, *idx1, *idx2], vec![*out]),
        MicroKernel::Gather2DGlobal {
            idx1, idx2, out, ..
        } => (vec![*idx1, *idx2], vec![*out]),
        MicroKernel::PairwiseReg { x, w, out } => (vec![*x, *w], vec![*out]),
        MicroKernel::MatMatGlobal { x, out, .. }
        | MicroKernel::PairwiseGlobal { x, out, .. } => (vec![*x], vec![*out]),
        MicroKernel::PerRowVecMat { x, w, out } => (vec![*x, *w], vec![*out]),
        MicroKernel::Elementwise { a, b, out, .. } => {
            let mut r = vec![*a];
            r.extend(b.iter().copied());
            (r, vec![*out])
        }
        MicroKernel::Squeeze { x, out } => (vec![*x], vec![*out]),
        MicroKernel::SegmentSoftmax { scores, seg, out } => {
            (vec![*scores, *seg], vec![*out])
        }
        MicroKernel::ScaleRows { x, s, out } => (vec![*x, *s], vec![*out]),
        MicroKernel::ScatterAdd { data, idx } => (vec![*data, *idx], vec![]),
    }
}

/// Names of the global tensors one instruction reads. Together with
/// [`accesses`] this is the complete access set of a micro-kernel: named
/// globals are read-only in task scope, and the only write target outside
/// the register file is the task's accumulator (via `ScatterAdd`).
pub fn global_inputs(op: &MicroKernel) -> Vec<&str> {
    match op {
        MicroKernel::GatherRows { src, .. }
        | MicroKernel::Gather2DGlobal { src, .. }
        | MicroKernel::GatherWeight { src, .. } => vec![src.as_str()],
        MicroKernel::MatMatGlobal { w, .. }
        | MicroKernel::PairwiseGlobal { w, .. } => vec![w.as_str()],
        _ => vec![],
    }
}

/// Whole-program access summary: per-register def/use program counters
/// plus the global-buffer touch points of every instruction, all derived
/// from [`accesses`] and the operands of the ops themselves.
///
/// One derivation serves both consumers — the fusion matcher's
/// register-confinement checks in [`crate::fused`] and the
/// schedule-interference pass in `wisegraph-analysis` — so the two can
/// never drift apart on what a program touches.
#[derive(Clone, Debug, Default)]
pub struct AccessSummary {
    /// Program counters reading each register, ascending.
    pub reads: Vec<Vec<usize>>,
    /// Program counters writing each register, ascending.
    pub writes: Vec<Vec<usize>>,
    /// `(pc, name)` for every read of a named global tensor.
    pub global_reads: Vec<(usize, String)>,
    /// `(pc, data, idx)` for every accumulator store.
    pub scatter_stores: Vec<(usize, Reg, Reg)>,
    /// For registers holding index streams, the edge attribute their
    /// values are drawn from, when that provenance is statically exact:
    /// `LoadStream` loads the attribute directly and `Unique`'s `values`
    /// output keeps the value domain of its input stream. Anything else —
    /// including multiply-written registers — is `None`.
    pub stream_origin: Vec<Option<AttrKind>>,
}

impl AccessSummary {
    /// `true` when register `r` is written exactly once, inside `lo..hi`,
    /// and read only after that write and before `hi` — i.e. the value
    /// never escapes the window, so skipping its materialization is
    /// unobservable.
    pub fn confined(&self, r: Reg, lo: usize, hi: usize) -> bool {
        let w = &self.writes[r.0];
        w.len() == 1
            && w[0] >= lo
            && w[0] < hi
            && self.reads[r.0].iter().all(|&pc| pc > w[0] && pc < hi)
    }
}

/// Builds the [`AccessSummary`] of a program. Registers outside the
/// declared range grow the tables instead of panicking: the summary is
/// also used to *diagnose* malformed programs.
pub fn summarize(program: &KernelProgram) -> AccessSummary {
    let max_reg = program
        .ops
        .iter()
        .flat_map(|op| {
            let (r, w) = accesses(op);
            r.into_iter().chain(w)
        })
        .map(|Reg(r)| r + 1)
        .max()
        .unwrap_or(0)
        .max(program.num_regs);
    let mut s = AccessSummary {
        reads: vec![Vec::new(); max_reg],
        writes: vec![Vec::new(); max_reg],
        global_reads: Vec::new(),
        scatter_stores: Vec::new(),
        stream_origin: vec![None; max_reg],
    };
    for (pc, op) in program.ops.iter().enumerate() {
        let (reads, writes) = accesses(op);
        for Reg(r) in reads {
            s.reads[r].push(pc);
        }
        for Reg(w) in writes {
            s.writes[w].push(pc);
        }
        for name in global_inputs(op) {
            s.global_reads.push((pc, name.to_string()));
        }
        match op {
            MicroKernel::LoadStream { attr, out } => {
                s.stream_origin[out.0] = Some(*attr);
            }
            MicroKernel::Unique { stream, values, map } => {
                s.stream_origin[values.0] = s.stream_origin[stream.0];
                s.stream_origin[map.0] = None;
            }
            MicroKernel::ScatterAdd { data, idx } => {
                s.scatter_stores.push((pc, *data, *idx));
            }
            _ => {}
        }
    }
    // Provenance is only exact under single assignment; a multiply-written
    // stream register could hold either origin at a use site.
    for r in 0..max_reg {
        if s.writes[r].len() != 1 {
            s.stream_origin[r] = None;
        }
    }
    s
}

/// Evaluates the epilogue: the DFG nodes after (or independent of) the
/// reduction, given the accumulated reduction value.
///
/// # Panics
///
/// Panics if an epilogue node uses an unsupported operation (the per-task
/// compiler accepts the DFG first, so this indicates an internal error) or
/// a global tensor is missing.
pub fn run_epilogue(
    dfg: &Dfg,
    g: &Graph,
    globals: &HashMap<String, Tensor>,
    reduce_node: NodeId,
    reduced: Tensor,
) -> Vec<Tensor> {
    let _sp = span!("kernel.epilogue");
    let mut values: HashMap<NodeId, Tensor> = HashMap::new();
    values.insert(reduce_node, reduced);
    let live = dfg.live_set();
    let edge_dep = edge_dependence(dfg);
    for (i, node) in dfg.nodes().iter().enumerate() {
        let id = NodeId(i);
        if !live[i] || values.contains_key(&id) || edge_dep[i] {
            continue;
        }
        // Only evaluate nodes whose inputs are available (edge-independent
        // sources or downstream of the reduction).
        let ready = node
            .inputs
            .iter()
            .all(|p| values.contains_key(p) || matches!(dfg.node(*p).kind, OpKind::Input { .. }));
        if !ready && !matches!(node.kind, OpKind::Input { .. }) {
            continue;
        }
        let arg = |k: usize| node.inputs[k];
        let v = match &node.kind {
            OpKind::Input { .. } => continue,
            OpKind::Linear => ops::matmul(
                dense_input(dfg, globals, &values, arg(0)),
                dense_input(dfg, globals, &values, arg(1)),
            ),
            OpKind::Add => ops::add(
                dense_input(dfg, globals, &values, arg(0)),
                dense_input(dfg, globals, &values, arg(1)),
            ),
            OpKind::Mul => ops::mul(
                dense_input(dfg, globals, &values, arg(0)),
                dense_input(dfg, globals, &values, arg(1)),
            ),
            OpKind::Relu => ops::relu(dense_input(dfg, globals, &values, arg(0))),
            OpKind::LeakyRelu => {
                ops::leaky_relu(dense_input(dfg, globals, &values, arg(0)), LEAKY_SLOPE)
            }
            OpKind::ScaleByDegreeInv => {
                let x = dense_input(dfg, globals, &values, arg(0));
                let scales: Vec<f32> = g
                    .in_degree()
                    .iter()
                    .map(|&d| 1.0 / (d.max(1) as f32))
                    .collect();
                ops::scale_rows(x, &Tensor::from_vec(scales, &[g.num_vertices()]))
            }
            OpKind::ConcatCols => ops::concat_cols(
                dense_input(dfg, globals, &values, arg(0)),
                dense_input(dfg, globals, &values, arg(1)),
            ),
            OpKind::PairwiseLinear => pairwise(
                dense_input(dfg, globals, &values, arg(0)),
                dense_input(dfg, globals, &values, arg(1)),
            ),
            other => panic!("unsupported epilogue operation {other:?}"),
        };
        values.insert(id, v);
    }
    dfg.outputs()
        .iter()
        .map(|o| values.get(o).cloned().expect("output computed"))
        .collect()
}

/// Compiles and executes a DFG over a partition plan: per-task programs
/// accumulate into the reduction buffer; the epilogue finishes the layer.
///
/// # Errors
///
/// Returns the compile error if the DFG is not per-task executable.
pub fn execute_by_plan(
    dfg: &Dfg,
    g: &Graph,
    plan: &PartitionPlan,
    globals: &HashMap<String, Tensor>,
) -> Result<Vec<Tensor>, CompileError> {
    let program = compile(dfg, g)?;
    if program.requires_dst_complete && !plan_is_dst_complete(g, plan) {
        return Err(CompileError(
            "per-destination normalization requires a destination-complete \
             plan (e.g. uniq(dst-id)=k tables)"
                .into(),
        ));
    }
    // Prologue: precompute edge-independent intermediates the per-task
    // program gathers from (e.g. the pairwise table, hoisted projections).
    let mut all_globals = globals.clone();
    if !program.prologue.is_empty() {
        let pre = eval_edge_independent(dfg, g, globals);
        for id in &program.prologue {
            let v = pre
                .get(id)
                .cloned()
                .ok_or_else(|| {
                    CompileError(format!("prologue node {} not evaluable", id.0))
                })?;
            all_globals.insert(prologue_name(*id), v);
        }
    }
    let mut acc = Tensor::zeros(&[program.out_rows, program.out_width]);
    let mut tws = TaskWorkspace::new();
    for task in &plan.tasks {
        run_task_ws(&program, g, &all_globals, &task.edges, &mut acc, &mut tws);
    }
    Ok(run_epilogue(dfg, g, globals, program.reduce_node, acc))
}

/// Returns `true` when every destination's in-edges live in exactly one
/// task of the plan.
pub fn plan_is_dst_complete(g: &Graph, plan: &PartitionPlan) -> bool {
    let mut pairs = 0usize;
    let mut all: Vec<u32> = Vec::new();
    for task in &plan.tasks {
        let mut dsts: Vec<u32> = task.edges.iter().map(|&e| g.dst()[e]).collect();
        dsts.sort_unstable();
        dsts.dedup();
        pairs += dsts.len();
        all.extend(dsts);
    }
    all.sort_unstable();
    all.dedup();
    pairs == all.len()
}

/// Evaluates every edge-independent, live, dense node of the DFG once
/// (the prologue of compiled execution).
pub fn eval_edge_independent_public(
    dfg: &Dfg,
    g: &Graph,
    globals: &HashMap<String, Tensor>,
) -> HashMap<NodeId, Tensor> {
    eval_edge_independent(dfg, g, globals)
}

fn eval_edge_independent(
    dfg: &Dfg,
    g: &Graph,
    globals: &HashMap<String, Tensor>,
) -> HashMap<NodeId, Tensor> {
    // Reuse the epilogue evaluator with an unreachable seed node.
    let mut values: HashMap<NodeId, Tensor> = HashMap::new();
    let live = dfg.live_set();
    let edge_dep = edge_dependence(dfg);
    for (i, node) in dfg.nodes().iter().enumerate() {
        let id = NodeId(i);
        if !live[i] || edge_dep[i] {
            continue;
        }
        let ready = node.inputs.iter().all(|p| {
            values.contains_key(p)
                || matches!(dfg.node(*p).kind, OpKind::Input { .. })
        });
        if !ready || matches!(node.kind, OpKind::Input { .. }) {
            continue;
        }
        let arg = |k: usize| node.inputs[k];
        let v = match &node.kind {
            OpKind::Linear => ops::matmul(
                dense_input(dfg, globals, &values, arg(0)),
                dense_input(dfg, globals, &values, arg(1)),
            ),
            OpKind::PairwiseLinear => pairwise(
                dense_input(dfg, globals, &values, arg(0)),
                dense_input(dfg, globals, &values, arg(1)),
            ),
            OpKind::Add => ops::add(
                dense_input(dfg, globals, &values, arg(0)),
                dense_input(dfg, globals, &values, arg(1)),
            ),
            OpKind::Mul => ops::mul(
                dense_input(dfg, globals, &values, arg(0)),
                dense_input(dfg, globals, &values, arg(1)),
            ),
            OpKind::Relu => ops::relu(dense_input(dfg, globals, &values, arg(0))),
            OpKind::LeakyRelu => {
                ops::leaky_relu(dense_input(dfg, globals, &values, arg(0)), LEAKY_SLOPE)
            }
            OpKind::ScaleByDegreeInv => {
                let x = dense_input(dfg, globals, &values, arg(0));
                let scales: Vec<f32> = g
                    .in_degree()
                    .iter()
                    .map(|&d| 1.0 / (d.max(1) as f32))
                    .collect();
                ops::scale_rows(x, &Tensor::from_vec(scales, &[g.num_vertices()]))
            }
            _ => continue,
        };
        values.insert(id, v);
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_dfg::interp::execute;
    use wisegraph_dfg::{transform, Binding};
    use wisegraph_graph::generate::{rmat, RmatParams};
    use wisegraph_gtask::{partition, PartitionTable};
    use wisegraph_models::ModelKind;
    use wisegraph_tensor::init;

    fn globals_for(g: &Graph, fi: usize, fo: usize) -> HashMap<String, Tensor> {
        let mut m = HashMap::new();
        m.insert(
            "h".to_string(),
            init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 1),
        );
        m.insert(
            "W".to_string(),
            init::uniform_tensor(&[g.num_edge_types(), fi, fo], -1.0, 1.0, 2),
        );
        m.insert("w".to_string(), init::uniform_tensor(&[fi, fo], -1.0, 1.0, 3));
        m.insert(
            "w_self".to_string(),
            init::uniform_tensor(&[fi, fo], -1.0, 1.0, 4),
        );
        m.insert(
            "w_neigh".to_string(),
            init::uniform_tensor(&[fi, fo], -1.0, 1.0, 5),
        );
        m
    }

    #[test]
    fn compiled_gcn_matches_interpreter() {
        let g = rmat(&RmatParams::standard(70, 500, 31).with_edge_types(2));
        let (fi, fo) = (5, 4);
        let dfg = ModelKind::Gcn.layer_dfg(fi, fo);
        let globals = globals_for(&g, fi, fo);
        let reference = &execute(&dfg, &g, &globals).unwrap()[0];
        for table in [
            PartitionTable::vertex_centric(),
            PartitionTable::edge_batch(16),
            PartitionTable::two_d(4),
        ] {
            let plan = partition(&g, &table);
            let got = &execute_by_plan(&dfg, &g, &plan, &globals).unwrap()[0];
            assert!(
                reference.allclose(got, 1e-3),
                "{table}: diff {}",
                reference.max_abs_diff(got)
            );
        }
    }

    #[test]
    fn compiled_rgcn_matches_interpreter() {
        let g = rmat(&RmatParams::standard(60, 400, 33).with_edge_types(3));
        let (fi, fo) = (4, 3);
        let dfg = ModelKind::Rgcn.layer_dfg(fi, fo);
        let globals = globals_for(&g, fi, fo);
        let reference = &execute(&dfg, &g, &globals).unwrap()[0];
        let plan = partition(&g, &PartitionTable::src_batch_per_type(8));
        let got = &execute_by_plan(&dfg, &g, &plan, &globals).unwrap()[0];
        assert!(
            reference.allclose(got, 1e-3),
            "diff {}",
            reference.max_abs_diff(got)
        );
    }

    #[test]
    fn compiled_transformed_rgcn_matches_interpreter() {
        // The transformed DFG (unique extraction + pairwise + Index2D)
        // compiles to dedup/pairwise micro-kernels and still matches.
        let g = rmat(&RmatParams::standard(40, 300, 35).with_edge_types(3));
        let (fi, fo) = (4, 3);
        let dfg = ModelKind::Rgcn.layer_dfg(fi, fo);
        let binding = Binding::from_graph(&g);
        let (opt, _) = transform::optimize(&dfg, &binding);
        let globals = globals_for(&g, fi, fo);
        let reference = &execute(&dfg, &g, &globals).unwrap()[0];
        let plan = partition(&g, &PartitionTable::src_batch_per_type(16));
        let got = &execute_by_plan(&opt, &g, &plan, &globals).unwrap()[0];
        assert!(
            reference.allclose(got, 1e-3),
            "diff {}",
            reference.max_abs_diff(got)
        );
    }

    #[test]
    fn compiled_sage_epilogue_join() {
        // SAGE joins an edge-independent branch (self projection) in the
        // epilogue.
        let g = rmat(&RmatParams::standard(50, 350, 37));
        let (fi, fo) = (4, 3);
        let dfg = ModelKind::Sage.layer_dfg(fi, fo);
        let globals = globals_for(&g, fi, fo);
        let reference = &execute(&dfg, &g, &globals).unwrap()[0];
        let plan = partition(&g, &PartitionTable::edge_batch(32));
        let got = &execute_by_plan(&dfg, &g, &plan, &globals).unwrap()[0];
        assert!(
            reference.allclose(got, 1e-3),
            "diff {}",
            reference.max_abs_diff(got)
        );
    }

    #[test]
    fn compiled_gat_on_destination_complete_plan() {
        // Per-destination softmax compiles, but only runs on plans whose
        // tasks hold whole destinations.
        let g = rmat(&RmatParams::standard(40, 300, 39));
        let (fi, fo) = (4, 3);
        let dfg = ModelKind::Gat.layer_dfg(fi, fo);
        let program = compile(&dfg, &g).unwrap();
        assert!(program.requires_dst_complete);

        let mut globals = HashMap::new();
        globals.insert(
            "h".to_string(),
            init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 91),
        );
        globals.insert(
            "w".to_string(),
            init::uniform_tensor(&[fi, fo], -1.0, 1.0, 92),
        );
        globals.insert(
            "a_src".to_string(),
            init::uniform_tensor(&[fo, 1], -1.0, 1.0, 93),
        );
        globals.insert(
            "a_dst".to_string(),
            init::uniform_tensor(&[fo, 1], -1.0, 1.0, 94),
        );
        let reference = &execute(&dfg, &g, &globals).unwrap()[0];
        // Destination-complete plan: exact.
        let plan = partition(&g, &PartitionTable::vertex_centric());
        let got = &execute_by_plan(&dfg, &g, &plan, &globals).unwrap()[0];
        assert!(
            reference.allclose(got, 1e-3),
            "diff {}",
            reference.max_abs_diff(got)
        );
        // Destination-splitting plan: rejected with a clear error.
        let bad = partition(&g, &PartitionTable::edge_batch(7));
        let err = execute_by_plan(&dfg, &g, &bad, &globals).unwrap_err();
        assert!(err.0.contains("destination-complete"), "{err}");
    }

    #[test]
    fn program_structure_is_sensible() {
        let g = rmat(&RmatParams::standard(20, 100, 41).with_edge_types(2));
        let dfg = ModelKind::Rgcn.layer_dfg(3, 2);
        let program = compile(&dfg, &g).unwrap();
        // Loads streams, gathers h and W, multiplies, scatters.
        assert!(program
            .ops
            .iter()
            .any(|k| matches!(k, MicroKernel::GatherRows { .. })));
        assert!(program
            .ops
            .iter()
            .any(|k| matches!(k, MicroKernel::GatherWeight { .. })));
        assert!(program
            .ops
            .iter()
            .any(|k| matches!(k, MicroKernel::PerRowVecMat { .. })));
        assert!(matches!(
            program.ops.last(),
            Some(MicroKernel::ScatterAdd { .. })
        ));
        assert_eq!(program.out_width, 2);
    }
}
