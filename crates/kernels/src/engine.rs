//! Parallel gTask execution engine.
//!
//! gTasks are independent units of work (their scatter targets only
//! overlap additively), so the compiled per-task programs parallelize
//! across CPU threads the way thread blocks parallelize across SMs: each
//! worker accumulates into a private buffer, and the buffers reduce at the
//! end. Work is distributed by contiguous chunks of tasks (tasks are
//! sorted by the plan's restriction keys, so chunks inherit locality).

use crate::micro::{
    compile, eval_edge_independent_public as eval_edge_independent,
    plan_is_dst_complete, prologue_name, run_epilogue, run_task, CompileError,
};
use std::collections::HashMap;
use wisegraph_dfg::Dfg;
use wisegraph_graph::Graph;
use wisegraph_gtask::PartitionPlan;
use wisegraph_tensor::{ops, Tensor};

/// Executes a compiled plan across `threads` workers and returns the DFG
/// outputs.
///
/// # Errors
///
/// Returns the compile error if the DFG cannot run per task.
///
/// # Panics
///
/// Panics if `threads == 0` or a worker thread panics.
pub fn execute_parallel(
    dfg: &Dfg,
    g: &Graph,
    plan: &PartitionPlan,
    globals: &HashMap<String, Tensor>,
    threads: usize,
) -> Result<Vec<Tensor>, CompileError> {
    assert!(threads > 0, "need at least one worker");
    let program = compile(dfg, g)?;
    if program.requires_dst_complete && !plan_is_dst_complete(g, plan) {
        return Err(CompileError(
            "per-destination normalization requires a destination-complete plan"
                .into(),
        ));
    }
    let mut all_globals = globals.clone();
    if !program.prologue.is_empty() {
        let pre = eval_edge_independent(dfg, g, globals);
        for id in &program.prologue {
            let v = pre.get(id).cloned().ok_or_else(|| {
                CompileError(format!("prologue node {} not evaluable", id.0))
            })?;
            all_globals.insert(prologue_name(*id), v);
        }
    }

    let chunk = plan.tasks.len().div_ceil(threads).max(1);
    let partials: Vec<Tensor> = std::thread::scope(|scope| {
        let handles: Vec<_> = plan
            .tasks
            .chunks(chunk)
            .map(|tasks| {
                let program = &program;
                let all_globals = &all_globals;
                scope.spawn(move || {
                    let mut acc =
                        Tensor::zeros(&[program.out_rows, program.out_width]);
                    for task in tasks {
                        run_task(program, g, all_globals, &task.edges, &mut acc);
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut acc = Tensor::zeros(&[program.out_rows, program.out_width]);
    for p in &partials {
        acc = ops::add(&acc, p);
    }
    Ok(run_epilogue(dfg, g, globals, program.reduce_node, acc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_dfg::interp::execute;
    use wisegraph_graph::generate::{rmat, RmatParams};
    use wisegraph_gtask::{partition, PartitionTable};
    use wisegraph_models::ModelKind;
    use wisegraph_tensor::init;

    #[test]
    fn parallel_matches_sequential_and_interpreter() {
        let g = rmat(&RmatParams::standard(150, 1500, 51).with_edge_types(4));
        let (fi, fo) = (6, 5);
        let dfg = ModelKind::Rgcn.layer_dfg(fi, fo);
        let mut globals = HashMap::new();
        globals.insert(
            "h".to_string(),
            init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 1),
        );
        globals.insert(
            "W".to_string(),
            init::uniform_tensor(&[g.num_edge_types(), fi, fo], -1.0, 1.0, 2),
        );
        let reference = &execute(&dfg, &g, &globals).unwrap()[0];
        let plan = partition(&g, &PartitionTable::src_batch_per_type(16));
        for threads in [1usize, 2, 4] {
            let got =
                &execute_parallel(&dfg, &g, &plan, &globals, threads).unwrap()[0];
            assert!(
                reference.allclose(got, 1e-3),
                "threads {threads}: diff {}",
                reference.max_abs_diff(got)
            );
        }
    }

    #[test]
    fn parallel_gcn_with_epilogue() {
        let g = rmat(&RmatParams::standard(120, 1000, 53));
        let (fi, fo) = (5, 4);
        let dfg = ModelKind::Gcn.layer_dfg(fi, fo);
        let mut globals = HashMap::new();
        globals.insert(
            "h".to_string(),
            init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 3),
        );
        globals.insert("w".to_string(), init::uniform_tensor(&[fi, fo], -1.0, 1.0, 4));
        let reference = &execute(&dfg, &g, &globals).unwrap()[0];
        let plan = partition(&g, &PartitionTable::edge_batch(64));
        let got = &execute_parallel(&dfg, &g, &plan, &globals, 3).unwrap()[0];
        assert!(reference.allclose(got, 1e-3));
    }

    #[test]
    fn single_task_plan_runs() {
        let g = rmat(&RmatParams::standard(30, 200, 55));
        let dfg = ModelKind::Gcn.layer_dfg(3, 2);
        let mut globals = HashMap::new();
        globals.insert(
            "h".to_string(),
            init::uniform_tensor(&[g.num_vertices(), 3], -1.0, 1.0, 5),
        );
        globals.insert("w".to_string(), init::uniform_tensor(&[3, 2], -1.0, 1.0, 6));
        let plan = partition(&g, &PartitionTable::new()); // one task
        assert_eq!(plan.num_tasks(), 1);
        let got = &execute_parallel(&dfg, &g, &plan, &globals, 4).unwrap()[0];
        let reference = &execute(&dfg, &g, &globals).unwrap()[0];
        assert!(reference.allclose(got, 1e-3));
    }
}
