//! Parallel gTask execution engine.
//!
//! gTasks are independent units of work (their scatter targets only
//! overlap additively), so the compiled per-task programs parallelize
//! across CPU threads the way thread blocks parallelize across SMs: each
//! worker accumulates into a private buffer, and the buffers reduce at the
//! end. Work is distributed by contiguous chunks of tasks (tasks are
//! sorted by the plan's restriction keys, so chunks inherit locality).
//!
//! An [`Engine`] owns one [`TaskWorkspace`] and one accumulator per worker,
//! both persisting across [`Engine::execute`] calls: chunk `i` always runs
//! on worker slot `i`, so a training loop executing the same plan every
//! epoch re-uses every buffer after the first call. The slot assignment is
//! deterministic and the final reduction runs in ascending worker order,
//! which keeps results bit-identical to the allocating reference path
//! ([`execute_parallel_alloc`]).

use crate::fused::{plan_fusion, run_task_fused, FusedPlan};
use crate::micro::{
    compile, eval_edge_independent_public as eval_edge_independent,
    plan_is_dst_complete, prologue_name, run_epilogue, run_task, run_task_ws,
    run_task_ws_shadow, CompileError, TaskWorkspace,
};
use crate::oppart::fusion_profitable;
use std::collections::HashMap;
use std::sync::Mutex;
use wisegraph_dfg::Dfg;
use wisegraph_graph::Graph;
use wisegraph_gtask::PartitionPlan;
use wisegraph_obs::{keys, span, with_lane, Class, Counters};
use wisegraph_tensor::{ops, Tensor};

/// The deterministic chunk-to-slot assignment shared by [`Engine::execute`]
/// and [`execute_parallel_alloc`]: tasks split into at most `threads`
/// contiguous ranges in ascending order, and chunk `i` always runs on
/// worker slot `i`. Exposed as a pure function so the static verifier
/// (`wisegraph-analysis`) can prove the mapping covers every task exactly
/// once without running anything.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn chunk_ranges(
    num_tasks: usize,
    threads: usize,
) -> Vec<std::ops::Range<usize>> {
    assert!(threads > 0, "need at least one worker");
    let chunk = num_tasks.div_ceil(threads).max(1);
    (0..num_tasks)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(num_tasks))
        .collect()
}

/// Persistent state of one worker: its task workspace and the partial
/// accumulator it scatters into.
#[derive(Default)]
struct WorkerSlot {
    tws: TaskWorkspace,
    acc: Option<Tensor>,
}

/// How the engine executes compiled per-task programs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Fuse when the cost rule ([`fusion_profitable`]) says the fused plan
    /// saves traffic; interpret otherwise. The default.
    #[default]
    Auto,
    /// Always run the instruction-at-a-time interpreter (the reference).
    Interpret,
    /// Always run the fused plan (instructions without a matched pattern
    /// still execute on the shared interpreter step).
    Fused,
    /// Shadow-memory sanitizer: interpret every instruction while
    /// recording, per accumulator cell, the last writer `(worker, task)`;
    /// after the workers join, cross-check the records against the
    /// engine's merge contract. Cross-task writes to the same cell are
    /// legal accumulation for plain scatter-add programs (the ascending
    /// reduce handles them deterministically) but a hard error for
    /// programs whose stores assume exclusive row ownership
    /// (per-destination normalization). Outputs are bit-identical to
    /// [`ExecMode::Auto`]; expect interpreter wall-clock plus recording
    /// overhead — this mode is for validation (`wisegraph-lint` pass 7,
    /// schedule bring-up), not production runs.
    Sanitize,
}

/// One sanitizer conflict record: an accumulator row written by two
/// different gTasks under a program whose stores assume exclusive row
/// ownership.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShadowConflict {
    /// The contested accumulator row.
    pub row: usize,
    /// First recorded writer, as `(worker slot, task index)`.
    pub first: (usize, usize),
    /// Last recorded writer, as `(worker slot, task index)`.
    pub last: (usize, usize),
}

/// What one sanitized execution observed. Retrieved via
/// [`Engine::last_sanitize`] after running in [`ExecMode::Sanitize`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SanitizeReport {
    /// Distinct accumulator cells (rows) written at least once.
    pub cells_tracked: u64,
    /// Individual row-writes recorded and checked.
    pub writes_checked: u64,
    /// Cells written by more than one gTask where the overlap is plain
    /// accumulation the deterministic merge handles.
    pub shared_cells: u64,
    /// Exclusive-ownership violations (empty unless the program requires
    /// a destination-complete plan). Capped at [`SHADOW_CONFLICT_CAP`]
    /// records; the run still fails on the first one.
    pub conflicts: Vec<ShadowConflict>,
}

/// Maximum conflict records retained in a [`SanitizeReport`].
pub const SHADOW_CONFLICT_CAP: usize = 8;

/// Cumulative sanitizer state across an engine's lifetime.
#[derive(Default)]
struct SanitizeStats {
    runs: u64,
    cells: u64,
    writes: u64,
    shared: u64,
    conflicts: u64,
    last: Option<SanitizeReport>,
}

/// A reusable parallel executor with persistent per-worker workspaces.
pub struct Engine {
    slots: Vec<Mutex<WorkerSlot>>,
    mode: ExecMode,
    sanitize: Mutex<SanitizeStats>,
    lane_base: u32,
}

impl Engine {
    /// Creates an engine with `threads` worker slots in [`ExecMode::Auto`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        Self::with_mode(threads, ExecMode::Auto)
    }

    /// Creates an engine with `threads` worker slots and an explicit
    /// execution mode. The differential harness in `tests/fused_parity.rs`
    /// runs [`ExecMode::Interpret`] against [`ExecMode::Fused`] engines.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_mode(threads: usize, mode: ExecMode) -> Self {
        Self::with_lane_base(threads, mode, 0)
    }

    /// Creates an engine whose worker slots record observability spans on
    /// lanes `lane_base + 1 ..= lane_base + threads`. A multi-device
    /// cluster gives each device engine a disjoint lane range so
    /// concurrently running devices never interleave their span streams
    /// on one lane — the `(lane, seq)` merge stays deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_lane_base(threads: usize, mode: ExecMode, lane_base: u32) -> Self {
        assert!(threads > 0, "need at least one worker");
        Self {
            slots: (0..threads).map(|_| Mutex::new(WorkerSlot::default())).collect(),
            mode,
            sanitize: Mutex::new(SanitizeStats::default()),
            lane_base,
        }
    }

    /// The shadow-memory record of the most recent sanitized execution, or
    /// `None` before the first [`ExecMode::Sanitize`] run. Also populated
    /// when a sanitized run fails on a conflict, so callers can inspect
    /// what the shadow map saw.
    pub fn last_sanitize(&self) -> Option<SanitizeReport> {
        self.sanitize
            .lock()
            .expect("sanitize state poisoned")
            .last
            .clone()
    }

    /// Number of worker slots.
    pub fn threads(&self) -> usize {
        self.slots.len()
    }

    /// The engine's execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Merged counters across all worker slots, honoring each metric's
    /// policy (counts sum; peaks take the per-worker maximum), plus the
    /// engine's own `engine.threads`.
    pub fn stats(&self) -> Counters {
        let mut c = Counters::new();
        for s in &self.slots {
            c.merge(&s.lock().expect("engine slot poisoned").tws.stats());
        }
        c.record_max(keys::ENGINE_THREADS, self.threads() as u64, Class::Resource);
        let s = self.sanitize.lock().expect("sanitize state poisoned");
        if s.runs > 0 {
            c.add_class(keys::SANITIZE_CELLS, s.cells, Class::Resource);
            c.add_class(keys::SANITIZE_WRITES, s.writes, Class::Resource);
            c.add_class(keys::SANITIZE_SHARED_CELLS, s.shared, Class::Resource);
            c.add_class(keys::SANITIZE_CONFLICTS, s.conflicts, Class::Resource);
        }
        c
    }

    /// Merges the per-worker shadow logs into a per-cell last-writer map
    /// and checks them against the merge contract: cross-task writes to
    /// one cell are legal accumulation for plain scatter-add programs, a
    /// hard error when the program's stores assume exclusive row
    /// ownership. Workers merge in ascending slot order, so first/last
    /// writer attribution is deterministic. Always updates the engine's
    /// cumulative sanitize state and [`Engine::last_sanitize`], including
    /// on the error path.
    fn check_shadows(
        &self,
        program: &crate::micro::KernelProgram,
        shadows: &[Vec<(u32, u32)>],
    ) -> Result<(), CompileError> {
        use std::collections::btree_map::Entry;
        use std::collections::BTreeMap;
        // Per cell: (first writer, last writer, written by >1 distinct
        // task), writers as (worker slot, task index).
        type CellState = ((usize, usize), (usize, usize), bool);
        let mut cells: BTreeMap<u32, CellState> = BTreeMap::new();
        let mut writes = 0u64;
        for (wi, shadow) in shadows.iter().enumerate() {
            for &(row, task) in shadow {
                writes += 1;
                let task = task as usize;
                match cells.entry(row) {
                    Entry::Vacant(v) => {
                        v.insert(((wi, task), (wi, task), false));
                    }
                    Entry::Occupied(mut o) => {
                        let e = o.get_mut();
                        if e.1 .1 != task {
                            e.2 = true;
                        }
                        e.1 = (wi, task);
                    }
                }
            }
        }
        let multi = cells.values().filter(|e| e.2).count() as u64;
        let exclusive = program.requires_dst_complete;
        let mut conflicts = Vec::new();
        if exclusive {
            for (&row, &(first, last, m)) in &cells {
                if m {
                    if conflicts.len() == SHADOW_CONFLICT_CAP {
                        break;
                    }
                    conflicts.push(ShadowConflict {
                        row: row as usize,
                        first,
                        last,
                    });
                }
            }
        }
        let report = SanitizeReport {
            cells_tracked: cells.len() as u64,
            writes_checked: writes,
            shared_cells: if exclusive { 0 } else { multi },
            conflicts,
        };
        let first_conflict = report.conflicts.first().copied();
        {
            let mut s = self.sanitize.lock().expect("sanitize state poisoned");
            s.runs += 1;
            s.cells += report.cells_tracked;
            s.writes += report.writes_checked;
            s.shared += report.shared_cells;
            if exclusive {
                s.conflicts += multi;
            }
            s.last = Some(report);
        }
        if let Some(c) = first_conflict {
            return Err(CompileError(format!(
                "sanitizer: {multi} accumulator cell(s) written by multiple \
                 gTasks under a per-destination-normalizing program; first \
                 conflict: row {} written by task {} (worker {}) and task {} \
                 (worker {})",
                c.row, c.first.1, c.first.0, c.last.1, c.last.0
            )));
        }
        Ok(())
    }

    /// Executes a compiled plan across the engine's workers and returns the
    /// DFG outputs. Buffers and accumulators persist into the next call.
    ///
    /// # Errors
    ///
    /// Returns the compile error if the DFG cannot run per task.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    pub fn execute(
        &self,
        dfg: &Dfg,
        g: &Graph,
        plan: &PartitionPlan,
        globals: &HashMap<String, Tensor>,
    ) -> Result<Vec<Tensor>, CompileError> {
        let program = compile(dfg, g)?;
        self.execute_program(&program, dfg, g, plan, globals)
    }

    /// Executes an *already compiled* program — the cache-aware entry
    /// point. A warm planning cache hands a decoded [`KernelProgram`]
    /// straight to this method and skips [`compile`] entirely;
    /// [`Engine::execute`] is the compile-then-run convenience wrapper.
    /// The program must have been compiled from this `dfg` against this
    /// `g` (the epilogue re-walks the DFG from `program.reduce_node`).
    ///
    /// # Errors
    ///
    /// Returns an error if the program needs a destination-complete plan
    /// and `plan` is not, or a prologue node cannot be evaluated.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    pub fn execute_program(
        &self,
        program: &crate::micro::KernelProgram,
        dfg: &Dfg,
        g: &Graph,
        plan: &PartitionPlan,
        globals: &HashMap<String, Tensor>,
    ) -> Result<Vec<Tensor>, CompileError> {
        let _sp = span!(
            "engine.execute",
            tasks = plan.tasks.len(),
            threads = self.threads()
        );
        // In Sanitize mode the static precondition is deliberately NOT
        // enforced up front: the run proceeds mechanically and the shadow
        // map must catch the resulting cross-task ownership violation
        // itself — that is exactly the static-vs-dynamic cross-check the
        // lint harness exercises.
        if program.requires_dst_complete
            && self.mode != ExecMode::Sanitize
            && !plan_is_dst_complete(g, plan)
        {
            return Err(CompileError(
                "per-destination normalization requires a destination-complete plan"
                    .into(),
            ));
        }
        let mut all_globals = globals.clone();
        if !program.prologue.is_empty() {
            let _psp = span!("engine.prologue", nodes = program.prologue.len());
            let pre = eval_edge_independent(dfg, g, globals);
            for id in &program.prologue {
                let v = pre.get(id).cloned().ok_or_else(|| {
                    CompileError(format!("prologue node {} not evaluable", id.0))
                })?;
                all_globals.insert(prologue_name(*id), v);
            }
        }
        let acc = self.reduce_tasks(program, g, plan, &all_globals)?;
        Ok(run_epilogue(dfg, g, globals, program.reduce_node, acc))
    }

    /// Executes an already compiled program with the prologue tensors
    /// supplied by the caller instead of evaluated locally — the
    /// project-then-communicate schedule's entry point (Fig. 11c): each
    /// device evaluates the edge-independent projections only for the
    /// vertex rows it owns, exchanges the projected halo rows, and hands
    /// the assembled tensors in here. Keys are [`prologue_name`] strings;
    /// every prologue node of the program must be covered.
    ///
    /// # Errors
    ///
    /// Returns an error if a prologue node is missing from `prologue`, or
    /// the program needs a destination-complete plan and `plan` is not.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    pub fn execute_program_with_prologue(
        &self,
        program: &crate::micro::KernelProgram,
        dfg: &Dfg,
        g: &Graph,
        plan: &PartitionPlan,
        globals: &HashMap<String, Tensor>,
        prologue: &HashMap<String, Tensor>,
    ) -> Result<Vec<Tensor>, CompileError> {
        let _sp = span!(
            "engine.execute.injected",
            tasks = plan.tasks.len(),
            prologue = program.prologue.len()
        );
        if program.requires_dst_complete
            && self.mode != ExecMode::Sanitize
            && !plan_is_dst_complete(g, plan)
        {
            return Err(CompileError(
                "per-destination normalization requires a destination-complete plan"
                    .into(),
            ));
        }
        let mut all_globals = globals.clone();
        for id in &program.prologue {
            let name = prologue_name(*id);
            let v = prologue.get(&name).cloned().ok_or_else(|| {
                CompileError(format!("prologue node {} not supplied", id.0))
            })?;
            all_globals.insert(name, v);
        }
        let acc = self.reduce_tasks(program, g, plan, &all_globals)?;
        Ok(run_epilogue(dfg, g, globals, program.reduce_node, acc))
    }

    /// Runs the per-task portion of a compiled program and returns the raw
    /// reduction accumulator, skipping the epilogue — the building block of
    /// the compute-then-reduce and tensor-parallel schedules, which move
    /// partial accumulators through collectives before one deterministic
    /// epilogue finishes the layer. Any prologue pseudo-globals the
    /// program gathers from must already be present in `all_globals`
    /// (under their [`prologue_name`] keys).
    ///
    /// # Errors
    ///
    /// Returns an error if a prologue pseudo-global is missing, or the
    /// program needs a destination-complete plan and `plan` is not.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    pub fn accumulate_program(
        &self,
        program: &crate::micro::KernelProgram,
        g: &Graph,
        plan: &PartitionPlan,
        all_globals: &HashMap<String, Tensor>,
    ) -> Result<Tensor, CompileError> {
        let _sp = span!(
            "engine.accumulate",
            tasks = plan.tasks.len(),
            threads = self.threads()
        );
        if program.requires_dst_complete
            && self.mode != ExecMode::Sanitize
            && !plan_is_dst_complete(g, plan)
        {
            return Err(CompileError(
                "per-destination normalization requires a destination-complete plan"
                    .into(),
            ));
        }
        for id in &program.prologue {
            if !all_globals.contains_key(&prologue_name(*id)) {
                return Err(CompileError(format!(
                    "prologue node {} not supplied",
                    id.0
                )));
            }
        }
        self.reduce_tasks(program, g, plan, all_globals)
    }

    /// The shared worker phase: distributes the plan's tasks over the
    /// worker slots, runs them under the engine's dispatch mode, checks
    /// shadows when sanitizing, and reduces the per-worker partials in
    /// ascending slot order.
    fn reduce_tasks(
        &self,
        program: &crate::micro::KernelProgram,
        g: &Graph,
        plan: &PartitionPlan,
        all_globals: &HashMap<String, Tensor>,
    ) -> Result<Tensor, CompileError> {
        // Dispatch decision: per program, before any worker starts, so the
        // same code path runs at every thread count.
        let sanitizing = self.mode == ExecMode::Sanitize;
        let fplan: Option<FusedPlan> = match self.mode {
            ExecMode::Interpret | ExecMode::Sanitize => None,
            ExecMode::Fused => Some(plan_fusion(program)),
            ExecMode::Auto => {
                let fp = plan_fusion(program);
                fusion_profitable(program, &fp).then_some(fp)
            }
        };

        let results: Vec<(Tensor, Vec<(u32, u32)>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunk_ranges(plan.tasks.len(), self.threads())
                .into_iter()
                .enumerate()
                .map(|(wi, range)| {
                    let first_task = range.start;
                    let tasks = &plan.tasks[range];
                    let fplan = fplan.as_ref();
                    let slot = &self.slots[wi];
                    let lane = self.lane_base + wi as u32 + 1;
                    // Lane 0 belongs to the driver thread; worker slot `wi`
                    // records on lane `lane_base + wi + 1`, making the
                    // trace's track layout a function of the deterministic
                    // slot assignment rather than of OS thread identity.
                    scope.spawn(move || {
                        with_lane(lane, || {
                            let _wsp =
                                span!("engine.worker", slot = wi, tasks = tasks.len());
                            let mut slot = slot.lock().expect("engine slot poisoned");
                            // Reuse last call's accumulator when the shape still
                            // fits; `fill(0.0)` makes it indistinguishable from a
                            // fresh zero tensor.
                            let mut acc = match slot.acc.take() {
                                Some(mut t)
                                    if t.dims()
                                        == [program.out_rows, program.out_width] =>
                                {
                                    t.data_mut().fill(0.0);
                                    t
                                }
                                _ => Tensor::zeros(&[
                                    program.out_rows,
                                    program.out_width,
                                ]),
                            };
                            let mut shadow = Vec::new();
                            for (k, task) in tasks.iter().enumerate() {
                                if sanitizing {
                                    run_task_ws_shadow(
                                        program,
                                        g,
                                        all_globals,
                                        &task.edges,
                                        &mut acc,
                                        &mut slot.tws,
                                        first_task + k,
                                        &mut shadow,
                                    );
                                    continue;
                                }
                                match fplan {
                                    Some(fp) => run_task_fused(
                                        program,
                                        fp,
                                        g,
                                        all_globals,
                                        &task.edges,
                                        &mut acc,
                                        &mut slot.tws,
                                    ),
                                    None => run_task_ws(
                                        program,
                                        g,
                                        all_globals,
                                        &task.edges,
                                        &mut acc,
                                        &mut slot.tws,
                                    ),
                                }
                            }
                            (acc, shadow)
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let (partials, shadows): (Vec<Tensor>, Vec<Vec<(u32, u32)>>) =
            results.into_iter().unzip();

        if sanitizing {
            self.check_shadows(program, &shadows)?;
        }

        // Reduce in ascending worker order (same order as the sequential
        // `acc = acc + p` of the allocating path), then park the partials
        // back in their slots for the next call.
        let _rsp = span!("engine.reduce", partials = partials.len());
        let mut acc = Tensor::zeros(&[program.out_rows, program.out_width]);
        for p in &partials {
            ops::add_assign(&mut acc, p);
        }
        for (wi, p) in partials.into_iter().enumerate() {
            self.slots[wi].lock().expect("engine slot poisoned").acc = Some(p);
        }
        Ok(acc)
    }
}

/// Executes a compiled plan across `threads` workers and returns the DFG
/// outputs, using a fresh [`Engine`] (workspaces are still reused across
/// the tasks of this one call).
///
/// # Errors
///
/// Returns the compile error if the DFG cannot run per task.
///
/// # Panics
///
/// Panics if `threads == 0` or a worker thread panics.
pub fn execute_parallel(
    dfg: &Dfg,
    g: &Graph,
    plan: &PartitionPlan,
    globals: &HashMap<String, Tensor>,
    threads: usize,
) -> Result<Vec<Tensor>, CompileError> {
    Engine::new(threads).execute(dfg, g, plan, globals)
}

/// Like [`execute_parallel`], with an explicit [`ExecMode`]. The
/// differential tests drive both sides of the fused/interpreter contract
/// through this entry point.
///
/// # Errors
///
/// Returns the compile error if the DFG cannot run per task.
///
/// # Panics
///
/// Panics if `threads == 0` or a worker thread panics.
pub fn execute_parallel_mode(
    dfg: &Dfg,
    g: &Graph,
    plan: &PartitionPlan,
    globals: &HashMap<String, Tensor>,
    threads: usize,
    mode: ExecMode,
) -> Result<Vec<Tensor>, CompileError> {
    Engine::with_mode(threads, mode).execute(dfg, g, plan, globals)
}

/// Allocating reference executor: identical work distribution to
/// [`Engine::execute`], but every task gets fresh buffers and every worker
/// a fresh accumulator — the alloc-per-call behavior the workspace path
/// eliminates. Kept as the parity/bench baseline.
///
/// # Errors
///
/// Returns the compile error if the DFG cannot run per task.
///
/// # Panics
///
/// Panics if `threads == 0` or a worker thread panics.
pub fn execute_parallel_alloc(
    dfg: &Dfg,
    g: &Graph,
    plan: &PartitionPlan,
    globals: &HashMap<String, Tensor>,
    threads: usize,
) -> Result<Vec<Tensor>, CompileError> {
    assert!(threads > 0, "need at least one worker");
    let program = compile(dfg, g)?;
    if program.requires_dst_complete && !plan_is_dst_complete(g, plan) {
        return Err(CompileError(
            "per-destination normalization requires a destination-complete plan"
                .into(),
        ));
    }
    let mut all_globals = globals.clone();
    if !program.prologue.is_empty() {
        let pre = eval_edge_independent(dfg, g, globals);
        for id in &program.prologue {
            let v = pre.get(id).cloned().ok_or_else(|| {
                CompileError(format!("prologue node {} not evaluable", id.0))
            })?;
            all_globals.insert(prologue_name(*id), v);
        }
    }

    let partials: Vec<Tensor> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunk_ranges(plan.tasks.len(), threads)
            .into_iter()
            .map(|range| {
                let tasks = &plan.tasks[range];
                let program = &program;
                let all_globals = &all_globals;
                scope.spawn(move || {
                    let mut acc =
                        Tensor::zeros(&[program.out_rows, program.out_width]);
                    for task in tasks {
                        run_task(program, g, all_globals, &task.edges, &mut acc);
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut acc = Tensor::zeros(&[program.out_rows, program.out_width]);
    for p in &partials {
        ops::add_assign(&mut acc, p);
    }
    Ok(run_epilogue(dfg, g, globals, program.reduce_node, acc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_dfg::interp::execute;
    use wisegraph_graph::generate::{rmat, RmatParams};
    use wisegraph_gtask::{partition, PartitionTable};
    use wisegraph_models::ModelKind;
    use wisegraph_tensor::init;

    #[test]
    fn chunk_ranges_cover_every_task_exactly_once() {
        for (n, t) in [(0usize, 3usize), (1, 4), (7, 2), (8, 4), (9, 4), (100, 7)] {
            let ranges = chunk_ranges(n, t);
            assert!(ranges.len() <= t, "{n} tasks / {t} threads: {ranges:?}");
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "{n} tasks / {t} threads: {ranges:?}");
                assert!(r.end > r.start, "empty chunk in {ranges:?}");
                next = r.end;
            }
            assert_eq!(next, n, "{n} tasks / {t} threads: {ranges:?}");
        }
    }

    #[test]
    fn chunk_ranges_edge_cases() {
        // Zero tasks: no chunks, nothing scheduled.
        assert!(chunk_ranges(0, 4).is_empty());
        // Single task: exactly one chunk regardless of worker count.
        assert_eq!(chunk_ranges(1, 8), vec![0..1]);
        // More threads than tasks: one single-task chunk per task, never
        // an empty chunk and never more chunks than tasks.
        let ranges = chunk_ranges(3, 10);
        assert_eq!(ranges, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn sanitize_mode_is_bit_identical_to_auto() {
        let g = rmat(&RmatParams::standard(120, 900, 61).with_edge_types(3));
        let (fi, fo) = (5, 4);
        let dfg = ModelKind::Rgcn.layer_dfg(fi, fo);
        let mut globals = HashMap::new();
        globals.insert(
            "h".to_string(),
            init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 11),
        );
        globals.insert(
            "W".to_string(),
            init::uniform_tensor(&[g.num_edge_types(), fi, fo], -1.0, 1.0, 12),
        );
        let plan = partition(&g, &PartitionTable::src_batch_per_type(8));
        for threads in [1usize, 2, 4] {
            let auto =
                execute_parallel_mode(&dfg, &g, &plan, &globals, threads, ExecMode::Auto)
                    .unwrap();
            let engine = Engine::with_mode(threads, ExecMode::Sanitize);
            let sanitized = engine.execute(&dfg, &g, &plan, &globals).unwrap();
            for (a, b) in auto.iter().zip(sanitized.iter()) {
                assert_eq!(a.data(), b.data(), "threads {threads}");
            }
            let rep = engine.last_sanitize().expect("sanitized run recorded");
            assert!(rep.conflicts.is_empty());
            assert_eq!(rep.writes_checked, g.num_edges() as u64);
            assert!(rep.cells_tracked > 0);
            let stats = engine.stats();
            assert_eq!(
                stats.count(keys::SANITIZE_WRITES),
                rep.writes_checked,
                "threads {threads}"
            );
        }
    }

    #[test]
    fn sanitizer_catches_exclusive_ownership_conflict() {
        // GAT's segment softmax assumes each task owns its destination
        // rows. An edge-batch plan splits destinations across tasks; the
        // static precondition would reject it, Sanitize mode instead runs
        // it and the shadow map must catch the conflict dynamically.
        let g = rmat(&RmatParams::standard(40, 300, 63));
        let (fi, fo) = (4, 3);
        let dfg = ModelKind::Gat.layer_dfg(fi, fo);
        let mut globals = HashMap::new();
        globals.insert(
            "h".to_string(),
            init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 13),
        );
        globals.insert("w".to_string(), init::uniform_tensor(&[fi, fo], -1.0, 1.0, 14));
        globals.insert(
            "a_src".to_string(),
            init::uniform_tensor(&[fo, 1], -1.0, 1.0, 15),
        );
        globals.insert(
            "a_dst".to_string(),
            init::uniform_tensor(&[fo, 1], -1.0, 1.0, 16),
        );
        let plan = partition(&g, &PartitionTable::edge_batch(16));
        let engine = Engine::with_mode(2, ExecMode::Sanitize);
        let err = engine
            .execute(&dfg, &g, &plan, &globals)
            .expect_err("overlapping destinations must fail under sanitize");
        assert!(err.to_string().contains("sanitizer"), "{err}");
        let rep = engine.last_sanitize().expect("report kept on error path");
        assert!(!rep.conflicts.is_empty());
        assert!(engine.stats().count(keys::SANITIZE_CONFLICTS) > 0);
        // The same combination under Auto is rejected statically instead.
        let auto_err = execute_parallel_mode(
            &dfg, &g, &plan, &globals, 2, ExecMode::Auto,
        )
        .expect_err("static precondition");
        assert!(auto_err.to_string().contains("destination-complete"));
    }

    #[test]
    fn parallel_matches_sequential_and_interpreter() {
        let g = rmat(&RmatParams::standard(150, 1500, 51).with_edge_types(4));
        let (fi, fo) = (6, 5);
        let dfg = ModelKind::Rgcn.layer_dfg(fi, fo);
        let mut globals = HashMap::new();
        globals.insert(
            "h".to_string(),
            init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 1),
        );
        globals.insert(
            "W".to_string(),
            init::uniform_tensor(&[g.num_edge_types(), fi, fo], -1.0, 1.0, 2),
        );
        let reference = &execute(&dfg, &g, &globals).unwrap()[0];
        let plan = partition(&g, &PartitionTable::src_batch_per_type(16));
        for threads in [1usize, 2, 4] {
            let got =
                &execute_parallel(&dfg, &g, &plan, &globals, threads).unwrap()[0];
            assert!(
                reference.allclose(got, 1e-3),
                "threads {threads}: diff {}",
                reference.max_abs_diff(got)
            );
        }
    }

    #[test]
    fn parallel_gcn_with_epilogue() {
        let g = rmat(&RmatParams::standard(120, 1000, 53));
        let (fi, fo) = (5, 4);
        let dfg = ModelKind::Gcn.layer_dfg(fi, fo);
        let mut globals = HashMap::new();
        globals.insert(
            "h".to_string(),
            init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 3),
        );
        globals.insert("w".to_string(), init::uniform_tensor(&[fi, fo], -1.0, 1.0, 4));
        let reference = &execute(&dfg, &g, &globals).unwrap()[0];
        let plan = partition(&g, &PartitionTable::edge_batch(64));
        let got = &execute_parallel(&dfg, &g, &plan, &globals, 3).unwrap()[0];
        assert!(reference.allclose(got, 1e-3));
    }

    #[test]
    fn single_task_plan_runs() {
        let g = rmat(&RmatParams::standard(30, 200, 55));
        let dfg = ModelKind::Gcn.layer_dfg(3, 2);
        let mut globals = HashMap::new();
        globals.insert(
            "h".to_string(),
            init::uniform_tensor(&[g.num_vertices(), 3], -1.0, 1.0, 5),
        );
        globals.insert("w".to_string(), init::uniform_tensor(&[3, 2], -1.0, 1.0, 6));
        let plan = partition(&g, &PartitionTable::new()); // one task
        assert_eq!(plan.num_tasks(), 1);
        let got = &execute_parallel(&dfg, &g, &plan, &globals, 4).unwrap()[0];
        let reference = &execute(&dfg, &g, &globals).unwrap()[0];
        assert!(reference.allclose(got, 1e-3));
    }

    #[test]
    fn engine_reuses_buffers_across_calls() {
        let g = rmat(&RmatParams::standard(100, 800, 57).with_edge_types(3));
        let (fi, fo) = (5, 4);
        let dfg = ModelKind::Rgcn.layer_dfg(fi, fo);
        let mut globals = HashMap::new();
        globals.insert(
            "h".to_string(),
            init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 7),
        );
        globals.insert(
            "W".to_string(),
            init::uniform_tensor(&[g.num_edge_types(), fi, fo], -1.0, 1.0, 8),
        );
        let plan = partition(&g, &PartitionTable::src_batch_per_type(8));
        let engine = Engine::new(2);
        let first = engine.execute(&dfg, &g, &plan, &globals).unwrap();
        let after_first = engine.stats();
        let second = engine.execute(&dfg, &g, &plan, &globals).unwrap();
        let after_second = engine.stats();
        // Identical inputs → bit-identical outputs.
        assert_eq!(first[0].data(), second[0].data());
        // The second call must be served (almost) entirely from the pool.
        assert!(
            after_second.count(keys::POOL_REUSED) > after_first.count(keys::POOL_REUSED)
        );
        assert_eq!(
            after_second.count(keys::POOL_CREATED),
            after_first.count(keys::POOL_CREATED),
            "steady state must not allocate new buffers"
        );
        // Work counters double exactly: the second call does the same work.
        assert_eq!(
            after_second.count(keys::KERNEL_EDGES),
            2 * after_first.count(keys::KERNEL_EDGES)
        );
        assert_eq!(
            after_second.count(keys::KERNEL_FLOPS),
            2 * after_first.count(keys::KERNEL_FLOPS)
        );
    }

    #[test]
    fn engine_matches_allocating_reference_bitwise() {
        let g = rmat(&RmatParams::standard(90, 700, 59).with_edge_types(2));
        let (fi, fo) = (4, 3);
        let dfg = ModelKind::Rgcn.layer_dfg(fi, fo);
        let mut globals = HashMap::new();
        globals.insert(
            "h".to_string(),
            init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 9),
        );
        globals.insert(
            "W".to_string(),
            init::uniform_tensor(&[g.num_edge_types(), fi, fo], -1.0, 1.0, 10),
        );
        let plan = partition(&g, &PartitionTable::src_batch_per_type(8));
        for threads in [1usize, 2, 4] {
            let a = execute_parallel_alloc(&dfg, &g, &plan, &globals, threads)
                .unwrap();
            let b = execute_parallel(&dfg, &g, &plan, &globals, threads).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.data(), y.data(), "threads {threads}");
            }
        }
    }
}
