//! Composable micro-kernels and kernel generation (paper §5.3).
//!
//! Operation partition assigns DFG operations to GPU kernels. A kernel
//! holding several operations keeps intermediates on chip (saving global
//! memory traffic — the graph-centric advantage), while its parallelization
//! is chosen from the *batched data* pattern (edge-by-edge vs. batched
//! matrix work — Figure 10). This crate provides:
//!
//! - [`oppart`]: operation partition plans — which DFG nodes share a kernel
//!   (`separate` = tensor-centric, `fused` = graph-centric, plus arbitrary
//!   groupings);
//! - [`generate`]: composition of micro-kernel costs into per-kernel
//!   [`wisegraph_sim::KernelCost`]s, with fusion-aware memory accounting
//!   (intra-group intermediates are free; group boundaries pay traffic) and
//!   batched-data-aware compute classes;
//! - [`exec`]: real CPU implementations of the generated fused kernels for
//!   RGCN and aggregation (both edge-by-edge and batched variants),
//!   validated against the DFG interpreter and used to ground the
//!   simulator's calibration via the in-repo `testkit::bench` harness;
//! - [`engine`]: the parallel gTask execution engine with persistent
//!   per-worker workspaces ([`micro::TaskWorkspace`]);
//! - [`fused`]: pattern-matched fusion of compiled micro-kernel chains
//!   into specialized, cache-blocked loops, bit-identical to the
//!   interpreter and dispatched by the cost rule in
//!   [`oppart::fusion_profitable`];
//! - [`cluster`]: sharded multi-device execution — one real [`engine`]
//!   per simulated device, deterministic collectives, and the paper's
//!   placement schedules (§5.4, Figure 11) as executable strategies.

pub mod cluster;
pub mod engine;
pub mod exec;
pub mod fused;
pub mod generate;
pub mod micro;
pub mod oppart;

pub use cluster::{ClusterEngine, ClusterRun, ExchangeLog};
pub use generate::{generate_kernels, GeneratedKernel, KernelContext};
pub use oppart::OpPartition;
