//! Operation partition plans: assigning DFG operations to kernels, and
//! the cost rule deciding when the micro-kernel executor runs a fused
//! plan instead of the interpreter.

use crate::fused::{FusedPlan, Segment};
use crate::micro::{KernelProgram, MicroKernel};
use std::collections::HashSet;
use wisegraph_dfg::{Dfg, NodeId};

/// Bytes of intermediate-register materialization one edge avoids under
/// the fused plan: every replaced instruction except the final scatter
/// writes a per-edge intermediate the interpreter materializes (one write)
/// and the next instruction reads back (one read). This is the same
/// accounting [`crate::generate`] uses for operation groups — intra-group
/// intermediates are free, group boundaries pay traffic — applied at
/// micro-kernel granularity.
///
/// Widths are taken from the program where they are static
/// (`out_width`-shaped rows); gathers of global tensors conservatively
/// count one `out_width` row, so the estimate is a lower bound on the
/// traffic actually avoided.
pub fn fusion_saved_bytes_per_edge(program: &KernelProgram, fplan: &FusedPlan) -> u64 {
    let mut saved = 0u64;
    for seg in &fplan.segments {
        let Segment::Fused(fk) = seg else { continue };
        for pc in fk.pcs.clone() {
            // The terminal ScatterAdd writes the shared accumulator either
            // way; every earlier instruction's output materialization (and
            // its read-back) disappears.
            if matches!(program.ops[pc], MicroKernel::ScatterAdd { .. }) {
                continue;
            }
            saved += 2 * 4 * program.out_width as u64;
        }
    }
    saved
}

/// The dispatch rule [`crate::engine::ExecMode::Auto`] applies: run the
/// fused plan when it avoids any intermediate traffic, i.e. when at least
/// one chain was matched. Fusion only ever removes buffer round-trips —
/// unmatched instructions execute on the same interpreter step either way
/// — so there is no regime where a matched plan loses; programs with no
/// matched chain (e.g. GAT's softmax pipeline) stay on the pure
/// interpreter.
pub fn fusion_profitable(program: &KernelProgram, fplan: &FusedPlan) -> bool {
    fusion_saved_bytes_per_edge(program, fplan) > 0
}

/// An assignment of the DFG's live compute nodes to kernels.
///
/// Source nodes (`Input`, `EdgeAttr`, `UniqueValues`, `UniqueMap`) are not
/// scheduled — they are resident data. Every other live node belongs to
/// exactly one group; each group becomes one generated kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpPartition {
    groups: Vec<Vec<NodeId>>,
}

/// Returns `true` if a node is resident data rather than scheduled work.
pub fn is_source(dfg: &Dfg, id: NodeId) -> bool {
    let kind = &dfg.node(id).kind;
    matches!(kind, wisegraph_dfg::OpKind::Input { .. }) || kind.is_index_stream()
}

impl OpPartition {
    /// Builds a partition from explicit groups.
    ///
    /// # Panics
    ///
    /// Panics if the groups do not cover every live compute node exactly
    /// once, or contain source/dead nodes.
    pub fn new(dfg: &Dfg, groups: Vec<Vec<NodeId>>) -> Self {
        let live = dfg.live_set();
        let mut seen = HashSet::new();
        for g in &groups {
            for &id in g {
                assert!(live[id.0], "group contains dead node {id:?}");
                assert!(!is_source(dfg, id), "group contains source node {id:?}");
                assert!(seen.insert(id), "node {id:?} appears in two groups");
            }
        }
        for (i, alive) in live.iter().enumerate() {
            let id = NodeId(i);
            if *alive && !is_source(dfg, id) {
                assert!(
                    seen.contains(&id),
                    "live compute node {id:?} not assigned to any group"
                );
            }
        }
        Self { groups }
    }

    /// Tensor-centric partition: one kernel per operation (§2.2).
    pub fn separate(dfg: &Dfg) -> Self {
        let live = dfg.live_set();
        let groups = (0..dfg.len())
            .filter(|&i| live[i] && !is_source(dfg, NodeId(i)))
            .map(|i| vec![NodeId(i)])
            .collect();
        Self::new(dfg, groups)
    }

    /// Graph-centric partition: every operation fused into one kernel.
    pub fn fused(dfg: &Dfg) -> Self {
        let live = dfg.live_set();
        let group: Vec<NodeId> = (0..dfg.len())
            .filter(|&i| live[i] && !is_source(dfg, NodeId(i)))
            .map(NodeId)
            .collect();
        Self::new(dfg, vec![group])
    }

    /// WiseGraph's default shape: heavy dense producers (`Linear`,
    /// `PairwiseLinear`) in stand-alone kernels (they batch globally), the
    /// per-edge chain (indexing, element-wise, reductions) fused into one.
    pub fn dense_separate_rest_fused(dfg: &Dfg) -> Self {
        let live = dfg.live_set();
        let mut dense = Vec::new();
        let mut rest = Vec::new();
        for (i, &is_live) in live.iter().enumerate().take(dfg.len()) {
            let id = NodeId(i);
            if !is_live || is_source(dfg, id) {
                continue;
            }
            match dfg.node(id).kind {
                wisegraph_dfg::OpKind::Linear | wisegraph_dfg::OpKind::PairwiseLinear => {
                    dense.push(id)
                }
                _ => rest.push(id),
            }
        }
        let mut groups: Vec<Vec<NodeId>> = dense.into_iter().map(|d| vec![d]).collect();
        if !rest.is_empty() {
            groups.push(rest);
        }
        Self::new(dfg, groups)
    }

    /// The kernel groups.
    pub fn groups(&self) -> &[Vec<NodeId>] {
        &self.groups
    }

    /// Number of kernels.
    pub fn num_kernels(&self) -> usize {
        self.groups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_dfg::Dim;
    use wisegraph_graph::AttrKind;

    fn rgcn_dfg() -> Dfg {
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(8)]);
        let w = d.input("W", vec![Dim::EdgeTypes, Dim::Lit(8), Dim::Lit(4)]);
        let src = d.edge_attr(AttrKind::SrcId);
        let ty = d.edge_attr(AttrKind::EdgeType);
        let dst = d.edge_attr(AttrKind::DstId);
        let hsrc = d.index(h, src);
        let wt = d.index(w, ty);
        let msg = d.per_edge_linear(hsrc, wt);
        let out = d.index_add(msg, dst, Dim::Vertices);
        d.mark_output(out);
        d
    }

    #[test]
    fn separate_yields_one_kernel_per_compute_node() {
        let d = rgcn_dfg();
        let p = OpPartition::separate(&d);
        // Compute nodes: two Index, PerEdgeLinear, IndexAdd.
        assert_eq!(p.num_kernels(), 4);
        assert!(p.groups().iter().all(|g| g.len() == 1));
    }

    #[test]
    fn fused_yields_single_kernel() {
        let d = rgcn_dfg();
        let p = OpPartition::fused(&d);
        assert_eq!(p.num_kernels(), 1);
        assert_eq!(p.groups()[0].len(), 4);
    }

    #[test]
    fn dense_separate_rest_fused_splits_linears() {
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(8)]);
        let w = d.input("w", vec![Dim::Lit(8), Dim::Lit(8)]);
        let src = d.edge_attr(AttrKind::SrcId);
        let dst = d.edge_attr(AttrKind::DstId);
        let proj = d.linear(h, w);
        let gathered = d.index(proj, src);
        let agg = d.index_add(gathered, dst, Dim::Vertices);
        d.mark_output(agg);
        let p = OpPartition::dense_separate_rest_fused(&d);
        assert_eq!(p.num_kernels(), 2);
        // One group holds exactly the Linear.
        assert!(p
            .groups()
            .iter()
            .any(|g| g.len() == 1 && g[0] == proj));
    }

    #[test]
    #[should_panic(expected = "not assigned")]
    fn missing_node_rejected() {
        let d = rgcn_dfg();
        OpPartition::new(&d, vec![]);
    }

    #[test]
    #[should_panic(expected = "two groups")]
    fn duplicate_node_rejected() {
        let d = rgcn_dfg();
        let all: Vec<NodeId> = OpPartition::fused(&d).groups()[0].clone();
        let mut groups = vec![all.clone()];
        groups.push(vec![all[0]]);
        OpPartition::new(&d, groups);
    }
}
