//! Fused micro-kernel codegen: pattern-matched load→compute→store chains
//! lowered to specialized, cache-blocked f32 loops.
//!
//! The interpreter in [`crate::micro`] executes one instruction at a time,
//! materializing every intermediate register in pool buffers. For the
//! three patterns that dominate GNN layers, that materialization is pure
//! overhead — each edge's gathered row is consumed exactly once by the
//! next instruction:
//!
//! * **segment-reduce** (`GatherRows` → `ScatterAdd`): GCN/SAGE
//!   aggregation, `out[dst[i]] += h[src[i]]`.
//! * **edge-batch matmul** (`GatherRows` → `MatMatGlobal` → `ScatterAdd`):
//!   a shared projection applied per edge, `out[dst[i]] += h[src[i]] @ w`.
//! * **per-type batched matmul** (`GatherRows` → `GatherWeight` →
//!   `PerRowVecMat` → `ScatterAdd`): RGCN's relation-specific transform,
//!   `out[dst[i]] += h[src[i]] @ W[ty[i]]`.
//!
//! [`plan_fusion`] scans a compiled [`KernelProgram`] for these chains and
//! replaces each with one [`FusedKernel`]; every other instruction stays on
//! the shared interpreter step ([`crate::micro`]'s `exec_op`), so arbitrary
//! programs (GAT's softmax pipeline, dedup/pairwise forms) fall back
//! instruction-by-instruction. Whether a program's fused plan is actually
//! used is decided by the cost rule in [`crate::oppart::fusion_profitable`].
//!
//! # Bit-identity contract
//!
//! The fused path must produce **exactly** the bytes of the interpreter at
//! every thread count, and report identical Work counters. The lowering
//! therefore only applies transforms that provably preserve the per-element
//! floating-point sequence:
//!
//! * intermediate buffers are skipped, never reordered: a gather-then-add
//!   is the same additions as an add-from-source; a matmul into a zeroed
//!   row buffer followed by a row add is the same sequence as the
//!   interpreter's matmul-into-buffer-then-scatter;
//! * loops are unrolled across **independent output columns** in
//!   [`LANES`]-wide chunks (separate accumulators, no re-association);
//! * blocking (edge blocks, weight column panels) only regroups iterations
//!   — for every output element, contributions still arrive in ascending
//!   `k` order within ascending edge order;
//! * the interpreter's `x == 0.0` skip in `matmul_into`/`PerRowVecMat` is
//!   replicated exactly (skipping `acc += 0.0 * w` does change bits for
//!   NaN/-0.0 inputs, so the skip itself is part of the contract).
//!
//! The contract is pinned by `tests/fused_parity.rs` (differential harness
//! over every model × table × thread count), property tests with shrinking,
//! and the K005/K006 analysis codes which verify fused segments cover
//! exactly the instructions they replace and that every pattern registers
//! an interpreter-parity test.

use std::collections::HashMap;
use std::ops::Range;
use wisegraph_graph::Graph;
use wisegraph_obs::span;
use wisegraph_tensor::Tensor;

use crate::micro::{
    exec_op, reg_stream, summarize, AccessSummary, KernelProgram, MicroKernel, Reg,
    TaskWorkspace,
};

/// Unroll width of the fused inner loops. Chosen so the autovectorizer can
/// map one unrolled group to a 128-bit SIMD lane; correctness never
/// depends on it (remainders run scalar).
pub const LANES: usize = 4;

/// Edges processed per block: keeps the index-stream slices and (for the
/// per-type pattern) the current weight slice hot while streaming rows.
const EDGE_BLOCK: usize = 128;

/// Column-panel width for the edge-batch matmul: the shared weight is
/// walked in panels so a panel of `w` stays in L1 across the `k` loop.
const COL_BLOCK: usize = 64;

/// The recognized fusion patterns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FusedPattern {
    /// `GatherRows` → `ScatterAdd`.
    SegmentReduce,
    /// `GatherRows` → `MatMatGlobal` → `ScatterAdd`.
    EdgeBatchMatmul,
    /// `GatherRows` → `GatherWeight` → `PerRowVecMat` → `ScatterAdd`.
    PerTypeBatchedMatmul,
}

impl FusedPattern {
    /// Every pattern the matcher can emit. Adding a variant here without a
    /// registered parity test fails `wisegraph-lint` (code K006).
    pub const ALL: [FusedPattern; 3] = [
        FusedPattern::SegmentReduce,
        FusedPattern::EdgeBatchMatmul,
        FusedPattern::PerTypeBatchedMatmul,
    ];

    /// Stable snake-case name (diagnostics, bench output).
    pub fn name(self) -> &'static str {
        match self {
            FusedPattern::SegmentReduce => "segment_reduce",
            FusedPattern::EdgeBatchMatmul => "edge_batch_matmul",
            FusedPattern::PerTypeBatchedMatmul => "per_type_batched_matmul",
        }
    }

    /// Name of the `#[test]` in `tests/fused_parity.rs` that pins this
    /// pattern bit-identical to the interpreter. `wisegraph-lint` scans the
    /// harness for exactly this function name.
    pub fn parity_test(self) -> &'static str {
        match self {
            FusedPattern::SegmentReduce => "segment_reduce_fused_matches_interpreter",
            FusedPattern::EdgeBatchMatmul => "edge_batch_matmul_fused_matches_interpreter",
            FusedPattern::PerTypeBatchedMatmul => {
                "per_type_batched_matmul_fused_matches_interpreter"
            }
        }
    }

    /// Number of interpreter instructions one fused kernel replaces.
    pub fn window(self) -> usize {
        match self {
            FusedPattern::SegmentReduce => 2,
            FusedPattern::EdgeBatchMatmul => 3,
            FusedPattern::PerTypeBatchedMatmul => 4,
        }
    }
}

/// The wiring of one fused kernel: global tensor names plus the stream
/// registers (produced by interpreted `LoadStream` instructions) it reads.
#[derive(Clone, Debug, PartialEq)]
pub enum FusedOp {
    /// `out[dst[i]] += src[src_idx[i]]`.
    SegmentReduce {
        /// Gathered global tensor name.
        src: String,
        /// Source-row stream register.
        src_idx: Reg,
        /// Destination-row stream register.
        dst_idx: Reg,
    },
    /// `out[dst[i]] += src[src_idx[i]] @ w`.
    EdgeBatchMatmul {
        /// Gathered global tensor name.
        src: String,
        /// Source-row stream register.
        src_idx: Reg,
        /// Shared `[f, f']` weight name.
        w: String,
        /// Destination-row stream register.
        dst_idx: Reg,
    },
    /// `out[dst[i]] += h[src_idx[i]] @ w[ty_idx[i]]`.
    PerTypeBatchedMatmul {
        /// Gathered global tensor name.
        h: String,
        /// Source-row stream register.
        src_idx: Reg,
        /// Global `[t, f, f']` weight name.
        w: String,
        /// Type stream register selecting the weight slice.
        ty_idx: Reg,
        /// Destination-row stream register.
        dst_idx: Reg,
    },
}

/// One fused kernel: which pattern, which program counters it replaces,
/// and its register/global wiring.
#[derive(Clone, Debug, PartialEq)]
pub struct FusedKernel {
    /// The matched pattern.
    pub pattern: FusedPattern,
    /// The replaced instruction range in `KernelProgram::ops`.
    pub pcs: Range<usize>,
    /// The lowered operation.
    pub op: FusedOp,
}

/// One execution step of a fused program.
#[derive(Clone, Debug, PartialEq)]
pub enum Segment {
    /// A fused kernel replacing `pcs.len()` interpreter instructions.
    Fused(FusedKernel),
    /// A single instruction executed by the shared interpreter step.
    Interp(usize),
}

/// A fused execution plan: the program's instructions partitioned into
/// fused kernels and interpreter steps, in original program order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FusedPlan {
    /// Execution steps covering `0..ops.len()` exactly once, ascending.
    pub segments: Vec<Segment>,
}

impl FusedPlan {
    /// Number of fused segments.
    pub fn num_fused(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s, Segment::Fused(_)))
            .count()
    }

    /// Total interpreter instructions replaced by fused segments.
    pub fn replaced_ops(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Fused(fk) => fk.pcs.len(),
                Segment::Interp(_) => 0,
            })
            .sum()
    }

    /// The patterns used, in program order (repeats preserved).
    pub fn patterns(&self) -> Vec<FusedPattern> {
        self.segments
            .iter()
            .filter_map(|s| match s {
                Segment::Fused(fk) => Some(fk.pattern),
                Segment::Interp(_) => None,
            })
            .collect()
    }

    /// Every program counter the plan executes, in execution order. A
    /// well-formed plan yields exactly `0..ops.len()`; the K005 analysis
    /// pass checks that.
    pub fn covered_pcs(&self) -> Vec<usize> {
        let mut pcs = Vec::new();
        for s in &self.segments {
            match s {
                Segment::Fused(fk) => pcs.extend(fk.pcs.clone()),
                Segment::Interp(pc) => pcs.push(*pc),
            }
        }
        pcs
    }
}

/// Tries to match a fusion pattern starting at `pc`, longest window first.
/// Confinement of the intermediate registers is checked against the shared
/// [`AccessSummary`] — the same derivation the schedule-interference pass
/// consumes, so the matcher and the verifier can never disagree on
/// register liveness.
fn match_at(program: &KernelProgram, u: &AccessSummary, pc: usize) -> Option<FusedKernel> {
    let ops = &program.ops;
    if pc + 4 <= ops.len() {
        if let [MicroKernel::GatherRows { src: h, idx: si, out: g1 }, MicroKernel::GatherWeight { src: w, idx: ti, out: g2 }, MicroKernel::PerRowVecMat { x, w: wr, out: m }, MicroKernel::ScatterAdd { data, idx: di }] =
            &ops[pc..pc + 4]
        {
            if x == g1
                && wr == g2
                && data == m
                && u.confined(*g1, pc, pc + 4)
                && u.confined(*g2, pc, pc + 4)
                && u.confined(*m, pc, pc + 4)
            {
                return Some(FusedKernel {
                    pattern: FusedPattern::PerTypeBatchedMatmul,
                    pcs: pc..pc + 4,
                    op: FusedOp::PerTypeBatchedMatmul {
                        h: h.clone(),
                        src_idx: *si,
                        w: w.clone(),
                        ty_idx: *ti,
                        dst_idx: *di,
                    },
                });
            }
        }
    }
    if pc + 3 <= ops.len() {
        if let [MicroKernel::GatherRows { src, idx: si, out: g1 }, MicroKernel::MatMatGlobal { x, w, out: m }, MicroKernel::ScatterAdd { data, idx: di }] =
            &ops[pc..pc + 3]
        {
            if x == g1
                && data == m
                && u.confined(*g1, pc, pc + 3)
                && u.confined(*m, pc, pc + 3)
            {
                return Some(FusedKernel {
                    pattern: FusedPattern::EdgeBatchMatmul,
                    pcs: pc..pc + 3,
                    op: FusedOp::EdgeBatchMatmul {
                        src: src.clone(),
                        src_idx: *si,
                        w: w.clone(),
                        dst_idx: *di,
                    },
                });
            }
        }
    }
    if pc + 2 <= ops.len() {
        if let [MicroKernel::GatherRows { src, idx: si, out: g1 }, MicroKernel::ScatterAdd { data, idx: di }] =
            &ops[pc..pc + 2]
        {
            if data == g1 && u.confined(*g1, pc, pc + 2) {
                return Some(FusedKernel {
                    pattern: FusedPattern::SegmentReduce,
                    pcs: pc..pc + 2,
                    op: FusedOp::SegmentReduce {
                        src: src.clone(),
                        src_idx: *si,
                        dst_idx: *di,
                    },
                });
            }
        }
    }
    None
}

/// Partitions a compiled program into fused kernels and interpreter steps:
/// a greedy left-to-right scan, longest pattern first at each position.
/// Deterministic — the same program always yields the same plan, so the
/// dispatch decision is identical at every thread count.
pub fn plan_fusion(program: &KernelProgram) -> FusedPlan {
    let u = summarize(program);
    let mut segments = Vec::new();
    let mut pc = 0;
    while pc < program.ops.len() {
        match match_at(program, &u, pc) {
            Some(fk) => {
                pc = fk.pcs.end;
                segments.push(Segment::Fused(fk));
            }
            None => {
                segments.push(Segment::Interp(pc));
                pc += 1;
            }
        }
    }
    FusedPlan { segments }
}

/// Verifies that `fk` covers exactly the instructions it claims to
/// replace: re-derives what the matcher would emit at `fk.pcs.start` and
/// requires structural equality. The check behind analysis code K005.
///
/// # Errors
///
/// Returns a description of the mismatch when the program's instructions
/// at `fk.pcs` no longer form (exactly) this fused kernel.
pub fn check_replaces(program: &KernelProgram, fk: &FusedKernel) -> Result<(), String> {
    let u = summarize(program);
    match match_at(program, &u, fk.pcs.start) {
        Some(m) if m == *fk => Ok(()),
        Some(m) => Err(format!(
            "fused segment at pc {} claims {:?} over {:?} but the program matches {:?} over {:?}",
            fk.pcs.start, fk.pattern, fk.pcs, m.pattern, m.pcs
        )),
        None => Err(format!(
            "fused segment at pc {} claims {:?} but no pattern matches there",
            fk.pcs.start, fk.pattern
        )),
    }
}

/// `acc[j] += row[j]`, unrolled in [`LANES`]-wide groups of independent
/// column accumulators.
#[inline]
fn add_row(acc: &mut [f32], row: &[f32]) {
    let mut a4 = acc.chunks_exact_mut(LANES);
    let mut r4 = row.chunks_exact(LANES);
    for (a, r) in (&mut a4).zip(&mut r4) {
        a[0] += r[0];
        a[1] += r[1];
        a[2] += r[2];
        a[3] += r[3];
    }
    for (a, &r) in a4.into_remainder().iter_mut().zip(r4.remainder()) {
        *a += r;
    }
}

/// `acc[j] += a * row[j]`, unrolled like [`add_row`]. Callers replicate
/// the interpreter's `a == 0.0` skip *before* calling.
#[inline]
fn axpy(acc: &mut [f32], a: f32, row: &[f32]) {
    let mut o4 = acc.chunks_exact_mut(LANES);
    let mut r4 = row.chunks_exact(LANES);
    for (o, r) in (&mut o4).zip(&mut r4) {
        o[0] += a * r[0];
        o[1] += a * r[1];
        o[2] += a * r[2];
        o[3] += a * r[3];
    }
    for (o, &r) in o4.into_remainder().iter_mut().zip(r4.remainder()) {
        *o += a * r;
    }
}

/// Executes one fused kernel against the task's streams, accumulating into
/// `out` with the interpreter's exact Work accounting.
fn run_fused(
    program: &KernelProgram,
    fk: &FusedKernel,
    globals: &HashMap<String, Tensor>,
    out: &mut Tensor,
    tws: &mut TaskWorkspace,
) {
    let TaskWorkspace { regs, ws, work } = tws;
    match &fk.op {
        FusedOp::SegmentReduce { src, src_idx, dst_idx } => {
            let srct = &globals[src];
            let n = srct.dims()[1];
            assert_eq!(n, program.out_width, "segment-reduce width mismatch");
            let si = reg_stream(regs, *src_idx);
            let di = reg_stream(regs, *dst_idx);
            let len = si.len();
            for (sb, db) in si.chunks(EDGE_BLOCK).zip(di.chunks(EDGE_BLOCK)) {
                for (&s, &d) in sb.iter().zip(db) {
                    add_row(out.row_mut(d as usize), srct.row(s as usize));
                }
            }
            // Same Work totals as GatherRows + ScatterAdd.
            work.bytes_gathered += (4 * len * n) as u64;
            work.flops += (len * n) as u64;
            work.bytes_scattered += (4 * len * n) as u64;
        }
        FusedOp::EdgeBatchMatmul {
            src,
            src_idx,
            w,
            dst_idx,
        } => {
            let h = &globals[src];
            let wt = &globals[w];
            let f = h.dims()[1];
            let n = wt.dims()[1];
            assert_eq!(f, wt.dims()[0], "edge-batch matmul inner-dim mismatch");
            assert_eq!(n, program.out_width, "edge-batch matmul width mismatch");
            let si = reg_stream(regs, *src_idx);
            let di = reg_stream(regs, *dst_idx);
            let len = si.len();
            let mut rowbuf = ws.take(n);
            for (sb, db) in si.chunks(EDGE_BLOCK).zip(di.chunks(EDGE_BLOCK)) {
                for (&s, &d) in sb.iter().zip(db) {
                    rowbuf.fill(0.0);
                    let hrow = h.row(s as usize);
                    let mut col = 0;
                    while col < n {
                        let cb = (n - col).min(COL_BLOCK);
                        for (k, &av) in hrow.iter().enumerate() {
                            if av == 0.0 {
                                continue;
                            }
                            axpy(
                                &mut rowbuf[col..col + cb],
                                av,
                                &wt.data()[k * n + col..k * n + col + cb],
                            );
                        }
                        col += cb;
                    }
                    add_row(out.row_mut(d as usize), &rowbuf);
                }
            }
            ws.give(rowbuf);
            // Same Work totals as GatherRows + MatMatGlobal + ScatterAdd.
            work.bytes_gathered += (4 * len * f) as u64;
            work.flops += (2 * len * f * n) as u64 + (len * n) as u64;
            work.bytes_scattered += (4 * len * n) as u64;
        }
        FusedOp::PerTypeBatchedMatmul {
            h,
            src_idx,
            w,
            ty_idx,
            dst_idx,
        } => {
            let ht = &globals[h];
            let wt = &globals[w];
            let f = ht.dims()[1];
            let fo = wt.dims()[2];
            assert_eq!(f, wt.dims()[1], "per-type matmul inner-dim mismatch");
            assert_eq!(fo, program.out_width, "per-type matmul width mismatch");
            let slice = f * fo;
            let si = reg_stream(regs, *src_idx);
            let ti = reg_stream(regs, *ty_idx);
            let di = reg_stream(regs, *dst_idx);
            let len = si.len();
            let mut rowbuf = ws.take(fo);
            for ((sb, tb), db) in si
                .chunks(EDGE_BLOCK)
                .zip(ti.chunks(EDGE_BLOCK))
                .zip(di.chunks(EDGE_BLOCK))
            {
                for ((&s, &t), &d) in sb.iter().zip(tb).zip(db) {
                    rowbuf.fill(0.0);
                    let hrow = ht.row(s as usize);
                    let wsl = &wt.data()[t as usize * slice..(t as usize + 1) * slice];
                    for (k, &av) in hrow.iter().enumerate() {
                        if av == 0.0 {
                            continue;
                        }
                        axpy(&mut rowbuf, av, &wsl[k * fo..(k + 1) * fo]);
                    }
                    add_row(out.row_mut(d as usize), &rowbuf);
                }
            }
            ws.give(rowbuf);
            // Same Work totals as GatherRows + GatherWeight + PerRowVecMat
            // + ScatterAdd (PerRowVecMat FLOPs are nominal: the zero-skip
            // is an execution shortcut, not less work in the model).
            work.bytes_gathered += (4 * len * f) as u64 + (4 * len * slice) as u64;
            work.flops += (2 * len * f * fo) as u64 + (len * fo) as u64;
            work.bytes_scattered += (4 * len * fo) as u64;
        }
    }
}

/// Executes the compiled program for one task's edges through a fused
/// plan, accumulating into `out`. Bit-identical to
/// [`crate::micro::run_task_ws`] over the same edges, with identical Work
/// counters; only the `kernel.fused_*` resource counters differ.
///
/// # Panics
///
/// Panics if the fused plan does not belong to `program` (register or
/// width mismatches), a register is used before assignment, or a global
/// tensor is missing.
pub fn run_task_fused(
    program: &KernelProgram,
    fplan: &FusedPlan,
    g: &Graph,
    globals: &HashMap<String, Tensor>,
    edges: &[usize],
    out: &mut Tensor,
    tws: &mut TaskWorkspace,
) {
    let mut sp = span!(
        "kernel.task.fused",
        edges = edges.len(),
        fused_segments = fplan.num_fused()
    );
    tws.prepare(program.num_regs);
    tws.work.tasks += 1;
    tws.work.edges += edges.len() as u64;
    if fplan.num_fused() > 0 {
        tws.work.fused_tasks += 1;
        tws.work.fused_micro_ops += fplan.replaced_ops() as u64;
    }
    let flops_before = tws.work.flops;
    for seg in &fplan.segments {
        match seg {
            Segment::Interp(pc) => {
                exec_op(program, &program.ops[*pc], g, globals, edges, out, tws)
            }
            Segment::Fused(fk) => run_fused(program, fk, globals, out, tws),
        }
    }
    sp.arg("flops", tws.work.flops - flops_before);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro::{compile, run_task_ws};
    use wisegraph_graph::generate::{rmat, RmatParams};
    use wisegraph_gtask::{partition, PartitionTable};
    use wisegraph_models::ModelKind;
    use wisegraph_tensor::init;

    fn globals_for(g: &Graph, fi: usize, fo: usize) -> HashMap<String, Tensor> {
        let mut m = HashMap::new();
        m.insert(
            "h".to_string(),
            init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 1),
        );
        m.insert(
            "W".to_string(),
            init::uniform_tensor(&[g.num_edge_types(), fi, fo], -1.0, 1.0, 2),
        );
        m.insert("w".to_string(), init::uniform_tensor(&[fi, fo], -1.0, 1.0, 3));
        m.insert(
            "w_self".to_string(),
            init::uniform_tensor(&[fi, fo], -1.0, 1.0, 4),
        );
        m.insert(
            "w_neigh".to_string(),
            init::uniform_tensor(&[fi, fo], -1.0, 1.0, 5),
        );
        m
    }

    #[test]
    fn gcn_program_fuses_to_segment_reduce() {
        let g = rmat(&RmatParams::standard(40, 250, 21));
        let program = compile(&ModelKind::Gcn.layer_dfg(5, 4), &g).unwrap();
        let fplan = plan_fusion(&program);
        assert_eq!(fplan.patterns(), vec![FusedPattern::SegmentReduce]);
        assert_eq!(fplan.covered_pcs(), (0..program.ops.len()).collect::<Vec<_>>());
        for seg in &fplan.segments {
            if let Segment::Fused(fk) = seg {
                check_replaces(&program, fk).unwrap();
            }
        }
    }

    #[test]
    fn rgcn_program_fuses_to_per_type_batched_matmul() {
        let g = rmat(&RmatParams::standard(40, 250, 23).with_edge_types(3));
        let program = compile(&ModelKind::Rgcn.layer_dfg(4, 3), &g).unwrap();
        let fplan = plan_fusion(&program);
        assert_eq!(fplan.patterns(), vec![FusedPattern::PerTypeBatchedMatmul]);
        assert_eq!(fplan.covered_pcs(), (0..program.ops.len()).collect::<Vec<_>>());
    }

    #[test]
    fn gat_program_falls_back_to_interpreter() {
        // The softmax pipeline has no matching chain: every instruction
        // stays an interpreter step.
        let g = rmat(&RmatParams::standard(40, 250, 25));
        let program = compile(&ModelKind::Gat.layer_dfg(4, 3), &g).unwrap();
        let fplan = plan_fusion(&program);
        assert_eq!(fplan.num_fused(), 0);
        assert_eq!(fplan.segments.len(), program.ops.len());
    }

    #[test]
    fn fused_task_is_bit_identical_to_interpreter() {
        let g = rmat(&RmatParams::standard(60, 400, 27).with_edge_types(3));
        let (fi, fo) = (6, 5);
        for kind in [ModelKind::Gcn, ModelKind::Rgcn, ModelKind::Sage] {
            let program = compile(&kind.layer_dfg(fi, fo), &g).unwrap();
            let fplan = plan_fusion(&program);
            assert!(fplan.num_fused() > 0, "{}", kind.name());
            let globals = globals_for(&g, fi, fo);
            let plan = partition(&g, &PartitionTable::edge_batch(32));
            let mut a = Tensor::zeros(&[program.out_rows, program.out_width]);
            let mut b = Tensor::zeros(&[program.out_rows, program.out_width]);
            let mut tws_a = TaskWorkspace::new();
            let mut tws_b = TaskWorkspace::new();
            for task in &plan.tasks {
                run_task_ws(&program, &g, &globals, &task.edges, &mut a, &mut tws_a);
                run_task_fused(
                    &program, &fplan, &g, &globals, &task.edges, &mut b, &mut tws_b,
                );
            }
            assert_eq!(a.data(), b.data(), "{}", kind.name());
        }
    }

    #[test]
    fn every_pattern_names_a_parity_test() {
        for p in FusedPattern::ALL {
            assert!(p.parity_test().starts_with(p.name()));
        }
    }
}
