//! Real CPU implementations of the generated fused kernels.
//!
//! These execute the same work the simulated GPU kernels describe, in the
//! two styles of Figure 10: edge-by-edge (no data batching) and batched
//! (per-gTask batch of unique sources → one matrix–matrix product). They
//! serve three purposes: numeric ground truth for the plans, the engine
//! behind the accuracy experiments, and real-throughput calibration points
//! for the simulator via the in-repo `testkit::bench` harness.

use wisegraph_graph::Graph;
use wisegraph_gtask::PartitionPlan;
use wisegraph_tensor::{ops, Tensor};

/// RGCN message-passing, edge by edge (Figure 10b):
/// `out[dst] += h[src] @ W[type]` with one vector–matrix product per edge.
///
/// # Panics
///
/// Panics if `h` is not `[V, F]` or `w` is not `[T, F, F']`.
pub fn rgcn_edge_by_edge(g: &Graph, h: &Tensor, w: &Tensor) -> Tensor {
    let (v, f) = (h.dims()[0], h.dims()[1]);
    assert_eq!(v, g.num_vertices(), "h rows must equal |V|");
    assert_eq!(w.dims()[0], g.num_edge_types(), "w leading dim must be T");
    assert_eq!(w.dims()[1], f, "w inner dim must equal F");
    let fo = w.dims()[2];
    let mut out = vec![0.0f32; v * fo];
    for e in 0..g.num_edges() {
        let (s, d, t) = (
            g.src()[e] as usize,
            g.dst()[e] as usize,
            g.etype()[e] as usize,
        );
        let hrow = &h.data()[s * f..(s + 1) * f];
        for (k, &hv) in hrow.iter().enumerate() {
            if hv == 0.0 {
                continue;
            }
            let wrow = &w.data()[(t * f + k) * fo..(t * f + k + 1) * fo];
            let orow = &mut out[d * fo..(d + 1) * fo];
            for (o, &wv) in orow.iter_mut().zip(wrow) {
                *o += hv * wv;
            }
        }
    }
    Tensor::from_vec(out, &[v, fo])
}

/// RGCN message-passing with per-gTask data batching (Figure 10c): for each
/// task, gather its unique source embeddings, run one `[K, F] @ [F, F']`
/// matrix product against the task's single weight, and scatter results to
/// destinations.
///
/// # Panics
///
/// Panics if a task mixes edge types (the plan must restrict
/// `uniq(edge-type) = 1`) or tensor shapes mismatch.
pub fn rgcn_batched(g: &Graph, plan: &PartitionPlan, h: &Tensor, w: &Tensor) -> Tensor {
    let (v, f) = (h.dims()[0], h.dims()[1]);
    assert_eq!(v, g.num_vertices(), "h rows must equal |V|");
    let fo = w.dims()[2];
    let mut out = Tensor::zeros(&[v, fo]);
    for task in &plan.tasks {
        // The task's single edge type.
        let t = g.etype()[task.edges[0]];
        assert!(
            task.edges.iter().all(|&e| g.etype()[e] == t),
            "batched RGCN kernel requires uniq(edge-type)=1 per task"
        );
        // Unique sources and the per-edge position map (the batch).
        let mut srcs: Vec<u32> = task.edges.iter().map(|&e| g.src()[e]).collect();
        srcs.sort_unstable();
        srcs.dedup();
        let batch = ops::gather_rows(h, &srcs);
        // One matrix–matrix product for the whole task.
        let wt = Tensor::from_vec(
            w.data()[(t as usize) * f * fo..(t as usize + 1) * f * fo].to_vec(),
            &[f, fo],
        );
        let encoded = ops::matmul(&batch, &wt);
        // Scatter to destinations.
        for &e in &task.edges {
            let pos = srcs.binary_search(&g.src()[e]).expect("src in batch");
            let row = encoded.row(pos);
            let orow = out.row_mut(g.dst()[e] as usize);
            for (o, &x) in orow.iter_mut().zip(row) {
                *o += x;
            }
        }
    }
    out
}

/// Neighbor-sum aggregation, edge by edge: `out[dst] += h[src]`.
///
/// # Panics
///
/// Panics if `h` is not `[V, F]`.
pub fn aggregate_sum_edgewise(g: &Graph, h: &Tensor) -> Tensor {
    let (v, f) = (h.dims()[0], h.dims()[1]);
    assert_eq!(v, g.num_vertices(), "h rows must equal |V|");
    let mut out = vec![0.0f32; v * f];
    for e in 0..g.num_edges() {
        let (s, d) = (g.src()[e] as usize, g.dst()[e] as usize);
        let hrow = &h.data()[s * f..(s + 1) * f];
        let orow = &mut out[d * f..(d + 1) * f];
        for (o, &x) in orow.iter_mut().zip(hrow) {
            *o += x;
        }
    }
    Tensor::from_vec(out, &[v, f])
}

/// Neighbor-sum aggregation driven by a partition plan: tasks processed one
/// at a time with a local accumulator flushed once per destination — the
/// fused per-gTask execution order.
///
/// # Panics
///
/// Panics if `h` is not `[V, F]`.
pub fn aggregate_sum_tasked(g: &Graph, plan: &PartitionPlan, h: &Tensor) -> Tensor {
    let (v, f) = (h.dims()[0], h.dims()[1]);
    assert_eq!(v, g.num_vertices(), "h rows must equal |V|");
    let mut out = Tensor::zeros(&[v, f]);
    let mut acc = vec![0.0f32; f];
    for task in &plan.tasks {
        let mut run_dst: Option<u32> = None;
        for &e in &task.edges {
            let d = g.dst()[e];
            if run_dst != Some(d) {
                if let Some(prev) = run_dst {
                    let orow = out.row_mut(prev as usize);
                    for (o, a) in orow.iter_mut().zip(acc.iter_mut()) {
                        *o += *a;
                        *a = 0.0;
                    }
                }
                run_dst = Some(d);
            }
            let hrow = h.row(g.src()[e] as usize);
            for (a, &x) in acc.iter_mut().zip(hrow) {
                *a += x;
            }
        }
        if let Some(prev) = run_dst {
            let orow = out.row_mut(prev as usize);
            for (o, a) in orow.iter_mut().zip(acc.iter_mut()) {
                *o += *a;
                *a = 0.0;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_graph::generate::{rmat, RmatParams};
    use wisegraph_gtask::{partition, PartitionTable};

    fn rand_tensor(dims: &[usize], seed: u64) -> Tensor {
        let n: usize = dims.iter().product();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let data = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / u32::MAX as f32) - 0.5
            })
            .collect();
        Tensor::from_vec(data, dims)
    }

    #[test]
    fn batched_rgcn_matches_edge_by_edge() {
        for seed in [1u64, 2, 3] {
            let g = rmat(&RmatParams::standard(80, 600, seed).with_edge_types(3));
            let h = rand_tensor(&[80, 6], seed + 10);
            let w = rand_tensor(&[3, 6, 4], seed + 20);
            let plan = partition(&g, &PartitionTable::src_batch_per_type(8));
            let a = rgcn_edge_by_edge(&g, &h, &w);
            let b = rgcn_batched(&g, &plan, &h, &w);
            assert!(
                a.allclose(&b, 1e-4),
                "seed {seed}: diff {}",
                a.max_abs_diff(&b)
            );
        }
    }

    #[test]
    fn batched_rgcn_with_various_k() {
        let g = rmat(&RmatParams::standard(60, 400, 9).with_edge_types(4));
        let h = rand_tensor(&[60, 5], 31);
        let w = rand_tensor(&[4, 5, 3], 32);
        let reference = rgcn_edge_by_edge(&g, &h, &w);
        for k in [1u64, 2, 16, 1024] {
            let plan = partition(&g, &PartitionTable::src_batch_per_type(k));
            let got = rgcn_batched(&g, &plan, &h, &w);
            assert!(reference.allclose(&got, 1e-4), "k = {k}");
        }
    }

    #[test]
    #[should_panic(expected = "uniq(edge-type)=1")]
    fn batched_rgcn_rejects_mixed_type_tasks() {
        let g = rmat(&RmatParams::standard(40, 300, 4).with_edge_types(3));
        let h = rand_tensor(&[40, 4], 1);
        let w = rand_tensor(&[3, 4, 4], 2);
        // Edge batching ignores type → mixed-type tasks.
        let plan = partition(&g, &PartitionTable::edge_batch(16));
        rgcn_batched(&g, &plan, &h, &w);
    }

    #[test]
    fn tasked_aggregation_matches_edgewise() {
        let g = rmat(&RmatParams::standard(100, 900, 6));
        let h = rand_tensor(&[100, 7], 3);
        let reference = aggregate_sum_edgewise(&g, &h);
        for table in [
            PartitionTable::vertex_centric(),
            PartitionTable::edge_batch(32),
            PartitionTable::two_d(4),
        ] {
            let plan = partition(&g, &table);
            let got = aggregate_sum_tasked(&g, &plan, &h);
            assert!(
                reference.allclose(&got, 1e-4),
                "table {table}: diff {}",
                reference.max_abs_diff(&got)
            );
        }
    }

    #[test]
    fn aggregation_on_empty_feature_rows() {
        // Vertices with no in-edges stay zero.
        let g = Graph::untyped(4, vec![0, 1], vec![2, 2]);
        let h = Tensor::ones(&[4, 3]);
        let out = aggregate_sum_edgewise(&g, &h);
        assert_eq!(out.row(0), &[0.0, 0.0, 0.0]);
        assert_eq!(out.row(2), &[2.0, 2.0, 2.0]);
    }
}
