//! Kernel generation: composing micro-kernel costs per operation group.
//!
//! For every group of the operation partition we compose data-loading,
//! compute, and store micro-kernels (paper §5.3). The composition rules
//! capture the three effects the paper's evaluation hinges on:
//!
//! - **fusion saves traffic**: tensors produced and consumed inside one
//!   group stay on chip — only group-boundary tensors pay global-memory
//!   bytes (and only boundary tensors occupy device memory, which is what
//!   makes tensor-centric plans go OOM on dense graphs);
//! - **batched data picks the micro-kernel**: a group whose heavy op sees a
//!   batch of `k` rows runs as a `Batched{k}` kernel (tensor cores, data
//!   reuse) instead of edge-by-edge (Figure 10);
//! - **on-chip capacity bounds batching**: when the batch outgrows shared
//!   memory, intra-group intermediates spill to global memory and the
//!   kernel degenerates toward the tensor-centric regime (the `INF` end of
//!   Figure 18).

use crate::oppart::OpPartition;
use std::collections::{BTreeMap, HashMap, HashSet};
use wisegraph_dfg::{Binding, Dfg, NodeId, OpKind};
use wisegraph_sim::{ComputeClass, DeviceSpec, KernelCost};

/// Pattern-derived context for kernel generation, extracted from the graph
/// partition plan's gTasks (paper §5.1).
#[derive(Clone, Copy, Debug)]
pub struct KernelContext {
    /// Number of gTasks processed in parallel (thread-block count).
    pub num_tasks: f64,
    /// Rows batched per task for the heavy operation (`uniq` of the batched
    /// attribute); 1 means edge-by-edge execution.
    pub batch_rows: usize,
    /// Whether index streams are sorted (partitioned plans sort edges, so
    /// their gathers coalesce; raw edge order does not).
    pub coalesced: bool,
    /// Rows of working set that fit on chip before spilling (shared-memory
    /// capacity in rows).
    pub onchip_rows: usize,
    /// Padding waste factor for recurrent (LSTM) aggregation: batching
    /// sequences of unequal length pads every sequence to the batch
    /// maximum. Degree-sorted gTask plans keep this near 1; arbitrary
    /// vertex batches on power-law graphs pay several × (Figure 18b).
    pub lstm_padding: f64,
    /// Gather deduplication factor in [0, 1]: plans whose gTasks group
    /// edges by shared attribute values (the *duplicated data* pattern)
    /// load each unique row once per task, cutting gather demand to this
    /// fraction of the raw per-edge demand.
    pub gather_dedup: f64,
    /// Scatter fragmentation factor in (0, 1]: the fraction of per-edge
    /// read-modify-write traffic a scatter-add pays. Destination-grouped
    /// plans accumulate on chip and write each destination row once
    /// (≈ |V|/|E|); plans that scatter to arbitrary destinations pay the
    /// full per-edge traffic (1.0).
    pub scatter_dedup: f64,
}

impl KernelContext {
    /// Tensor-centric context: the graph is one implicit task, fully
    /// materialized.
    pub fn tensor_centric() -> Self {
        Self {
            num_tasks: 1.0,
            batch_rows: 1,
            coalesced: false,
            onchip_rows: 256,
            lstm_padding: 1.0,
            gather_dedup: 1.0,
            scatter_dedup: 1.0,
        }
    }

    /// Graph-centric context over `num_tasks` fine-grained tasks without
    /// data batching.
    pub fn graph_centric(num_tasks: f64) -> Self {
        Self {
            num_tasks,
            batch_rows: 1,
            coalesced: false,
            onchip_rows: 256,
            lstm_padding: 1.0,
            gather_dedup: 1.0,
            scatter_dedup: 1.0,
        }
    }

    /// gTask context with batching (WiseGraph's generated kernels).
    pub fn gtask(num_tasks: f64, batch_rows: usize) -> Self {
        Self {
            num_tasks,
            batch_rows: batch_rows.max(1),
            coalesced: true,
            onchip_rows: 256,
            lstm_padding: 1.0,
            gather_dedup: 1.0,
            scatter_dedup: 1.0,
        }
    }

    /// Sets the LSTM padding factor.
    pub fn with_lstm_padding(mut self, padding: f64) -> Self {
        self.lstm_padding = padding.max(1.0);
        self
    }

    /// Sets the gather-deduplication factor.
    pub fn with_gather_dedup(mut self, dedup: f64) -> Self {
        self.gather_dedup = dedup.clamp(0.0, 1.0);
        self
    }

    /// Sets the scatter-fragmentation factor.
    pub fn with_scatter_dedup(mut self, dedup: f64) -> Self {
        self.scatter_dedup = dedup.clamp(0.0, 1.0);
        self
    }
}

/// One generated kernel: the operations it hosts and its simulator cost.
#[derive(Clone, Debug)]
pub struct GeneratedKernel {
    /// The DFG nodes executed by this kernel.
    pub nodes: Vec<NodeId>,
    /// Roofline cost signature.
    pub cost: KernelCost,
}

fn node_flops(dfg: &Dfg, binding: &Binding, id: NodeId) -> f64 {
    let node = dfg.node(id);
    let in_shapes: Vec<_> = node
        .inputs
        .iter()
        .map(|&p| dfg.node(p).shape.clone())
        .collect();
    node.kind.flops(&in_shapes, &node.shape, binding)
}

fn shape_bytes(dfg: &Dfg, binding: &Binding, id: NodeId) -> f64 {
    binding.numel(&dfg.node(id).shape) as f64 * 4.0
}

fn shape_bytes_of(binding: &Binding, shape: &wisegraph_dfg::SymShape) -> f64 {
    binding.numel(shape) as f64 * 4.0
}

/// Chooses the compute class for a group given its ops and the context.
fn classify(dfg: &Dfg, group: &[NodeId], ctx: &KernelContext) -> ComputeClass {
    let kinds: Vec<&OpKind> = group.iter().map(|&id| &dfg.node(id).kind).collect();
    let has = |f: &dyn Fn(&OpKind) -> bool| kinds.iter().any(|k| f(k));
    if has(&|k| matches!(k, OpKind::LstmAggregate { .. })) {
        // Sequences batch at the plan's batching granularity.
        return ComputeClass::Recurrent {
            batch: ctx.batch_rows.max(1),
        };
    }
    let has_indexing = has(&|k| k.is_indexing());
    let has_dense = has(&|k| matches!(k, OpKind::Linear | OpKind::PairwiseLinear));
    let has_per_edge = has(&|k| matches!(k, OpKind::PerEdgeLinear));
    if has_per_edge || (has_dense && has_indexing) {
        return if ctx.batch_rows <= 1 {
            ComputeClass::EdgeWise
        } else {
            ComputeClass::Batched { k: ctx.batch_rows }
        };
    }
    if has_dense {
        return ComputeClass::DenseMatmul;
    }
    if has_indexing {
        // Gather/scatter dominates any fused element-wise work.
        return ComputeClass::Memory {
            coalesced: ctx.coalesced,
        };
    }
    ComputeClass::Elementwise
}

/// L2-like cache capacity used by the reread model (bytes). Operands
/// smaller than this are re-read from cache, not from HBM.
const CACHE_BYTES: f64 = 16.0e6;

/// Global-memory traffic for reading an external operand of size
/// `producer` bytes with a total per-element demand of `demand` bytes:
/// the first pass always reads the operand; rereads miss in proportion to
/// how much of the operand fits in cache.
fn reread_traffic(producer: f64, demand: f64) -> f64 {
    let rereads = (demand - producer).max(0.0);
    let miss = (producer / CACHE_BYTES).min(1.0);
    producer + rereads * miss
}

/// Generates one [`KernelCost`] per operation group.
pub fn generate_kernels(
    dfg: &Dfg,
    binding: &Binding,
    part: &OpPartition,
    ctx: &KernelContext,
) -> Vec<GeneratedKernel> {
    let consumers = dfg.consumers();
    let outputs: HashSet<NodeId> = dfg.outputs().iter().copied().collect();
    let mut group_of: HashMap<NodeId, usize> = HashMap::new();
    for (gi, g) in part.groups().iter().enumerate() {
        for &id in g {
            group_of.insert(id, gi);
        }
    }
    // Demand per producer: how many bytes its consumers read in total.
    // A gather (`Index`/`Index2D`) reads one row per output element, so
    // its demand on the data operand is the gather's *output* volume.
    let mut demand: HashMap<NodeId, f64> = HashMap::new();
    for node in dfg.nodes() {
        for (pos, &p) in node.inputs.iter().enumerate() {
            let d = match (&node.kind, pos) {
                (OpKind::Index, 0) | (OpKind::Index2D, 0) => {
                    shape_bytes_of(binding, &node.shape) * ctx.gather_dedup
                }
                _ => shape_bytes(dfg, binding, p),
            };
            *demand.entry(p).or_insert(0.0) += d;
        }
    }
    part.groups()
        .iter()
        .enumerate()
        .map(|(gi, group)| {
            let in_group = |id: &NodeId| group_of.get(id) == Some(&gi);
            let mut flops = 0.0;
            let mut bytes = 0.0;
            let mut max_rows: f64 = 1.0;
            // Keyed by `NodeId`'s total order: the float accumulation
            // below must visit producers in a fixed order, or the summed
            // byte cost (and thus plan choice) varies run to run.
            let mut external_reads: BTreeMap<NodeId, f64> = BTreeMap::new();
            for &id in group {
                let node = dfg.node(id);
                let node_f = node_flops(dfg, binding, id);
                // Recurrent padding: unequal sequence lengths inside a
                // batch pad every sequence to the batch maximum.
                flops += if matches!(node.kind, OpKind::LstmAggregate { .. }) {
                    node_f * ctx.lstm_padding
                } else {
                    node_f
                };
                // External input reads, demand-based.
                for (pos, &p) in node.inputs.iter().enumerate() {
                    if !in_group(&p) {
                        let d = match (&node.kind, pos) {
                            (OpKind::Index, 0) | (OpKind::Index2D, 0) => {
                                shape_bytes_of(binding, &node.shape) * ctx.gather_dedup
                            }
                            _ => shape_bytes(dfg, binding, p),
                        };
                        *external_reads.entry(p).or_insert(0.0) += d;
                    }
                }
                // Output accounting.
                let nbytes = shape_bytes(dfg, binding, id);
                let escapes = outputs.contains(&id)
                    || consumers[id.0].iter().any(|c| !in_group(c));
                if matches!(node.kind, OpKind::IndexAdd { .. }) {
                    // Scatter-add: read-modify-write per (task, destination)
                    // fragment, whether or not the result escapes the
                    // group; destination-grouped plans accumulate on chip
                    // and approach one write per row.
                    let data_bytes = shape_bytes(dfg, binding, node.inputs[0]);
                    bytes += nbytes.max(2.0 * data_bytes * ctx.scatter_dedup);
                } else if escapes {
                    // Written once to global memory.
                    bytes += nbytes;
                } else if !node.kind.is_index_stream()
                    && !matches!(node.kind, OpKind::IndexAdd { .. })
                {
                    // On-chip only if the tensor is per-edge local (its
                    // leading dimension is the edge stream the tasks
                    // partition) and the batch fits in shared memory.
                    // Shared tables (e.g. the pairwise tensor, per-vertex
                    // projections) live in global memory.
                    let per_edge_local =
                        node.shape.first() == Some(&wisegraph_dfg::Dim::Edges);
                    let spilled = !per_edge_local || ctx.batch_rows > ctx.onchip_rows;
                    if spilled {
                        let in_demand = demand.get(&id).copied().unwrap_or(0.0);
                        bytes += nbytes + reread_traffic(nbytes, in_demand);
                    }
                }
                let rows: f64 = node.shape[..node.shape.len().saturating_sub(1)]
                    .iter()
                    .map(|&d| binding.eval(d) as f64)
                    .product();
                max_rows = max_rows.max(rows);
            }
            for (&p, &d) in &external_reads {
                bytes += reread_traffic(shape_bytes(dfg, binding, p), d);
            }
            let class = classify(dfg, group, ctx);
            let parallel_tasks = ctx.num_tasks.max(max_rows / 64.0);
            GeneratedKernel {
                nodes: group.clone(),
                cost: KernelCost {
                    flops,
                    bytes,
                    parallel_tasks,
                    class,
                },
            }
        })
        .collect()
}

/// Total simulated time for a set of generated kernels on a device.
pub fn total_time(device: &DeviceSpec, kernels: &[GeneratedKernel]) -> f64 {
    kernels.iter().map(|k| device.kernel_time(&k.cost)).sum()
}

/// Device-memory bytes occupied by group-boundary tensors (materialized
/// intermediates). Fused plans keep intermediates on chip; separate plans
/// materialize everything — the OOM driver of Figure 13.
pub fn boundary_bytes(dfg: &Dfg, binding: &Binding, part: &OpPartition) -> f64 {
    let consumers = dfg.consumers();
    let outputs: HashSet<NodeId> = dfg.outputs().iter().copied().collect();
    let mut group_of: HashMap<NodeId, usize> = HashMap::new();
    for (gi, g) in part.groups().iter().enumerate() {
        for &id in g {
            group_of.insert(id, gi);
        }
    }
    let mut total = 0.0;
    for g in part.groups() {
        for &id in g {
            let gi = group_of[&id];
            let escapes = outputs.contains(&id)
                || consumers[id.0]
                    .iter()
                    .any(|c| group_of.get(c) != Some(&gi));
            if escapes && !outputs.contains(&id) {
                total += shape_bytes(dfg, binding, id);
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_dfg::Dim;
    use wisegraph_graph::generate::{rmat, RmatParams};
    use wisegraph_graph::AttrKind;

    fn rgcn_dfg(f: usize) -> Dfg {
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(f)]);
        let w = d.input("W", vec![Dim::EdgeTypes, Dim::Lit(f), Dim::Lit(f)]);
        let src = d.edge_attr(AttrKind::SrcId);
        let ty = d.edge_attr(AttrKind::EdgeType);
        let dst = d.edge_attr(AttrKind::DstId);
        let hsrc = d.index(h, src);
        let wt = d.index(w, ty);
        let msg = d.per_edge_linear(hsrc, wt);
        let out = d.index_add(msg, dst, Dim::Vertices);
        d.mark_output(out);
        d
    }

    fn setup() -> (Dfg, Binding) {
        let g = rmat(&RmatParams::standard(1000, 20_000, 7).with_edge_types(4));
        let d = rgcn_dfg(64);
        let b = Binding::from_graph(&g);
        (d, b)
    }

    #[test]
    fn fused_moves_fewer_bytes_than_separate() {
        let (d, b) = setup();
        let sep = generate_kernels(
            &d,
            &b,
            &OpPartition::separate(&d),
            &KernelContext::tensor_centric(),
        );
        let fus = generate_kernels(
            &d,
            &b,
            &OpPartition::fused(&d),
            &KernelContext::graph_centric(1000.0),
        );
        let sep_bytes: f64 = sep.iter().map(|k| k.cost.bytes).sum();
        let fus_bytes: f64 = fus.iter().map(|k| k.cost.bytes).sum();
        assert!(
            fus_bytes < sep_bytes / 2.0,
            "fused {fus_bytes} vs separate {sep_bytes}"
        );
        // FLOPs are identical — fusion only changes traffic.
        let sep_flops: f64 = sep.iter().map(|k| k.cost.flops).sum();
        let fus_flops: f64 = fus.iter().map(|k| k.cost.flops).sum();
        assert!((sep_flops - fus_flops).abs() / sep_flops < 1e-9);
    }

    #[test]
    fn unbatched_fused_kernel_is_edgewise() {
        let (d, b) = setup();
        let fus = generate_kernels(
            &d,
            &b,
            &OpPartition::fused(&d),
            &KernelContext::graph_centric(1000.0),
        );
        assert_eq!(fus.len(), 1);
        assert_eq!(fus[0].cost.class, ComputeClass::EdgeWise);
    }

    #[test]
    fn batched_context_yields_batched_class() {
        let (d, b) = setup();
        let fus = generate_kernels(
            &d,
            &b,
            &OpPartition::fused(&d),
            &KernelContext::gtask(600.0, 32),
        );
        assert_eq!(fus[0].cost.class, ComputeClass::Batched { k: 32 });
    }

    #[test]
    fn figure18_dome_shape() {
        // Simulated time of the fused RGCN kernel as K sweeps: K=1 slow,
        // moderate K fast, K=INF (spilled, single task per type) slower
        // than the best K.
        let (d, b) = setup();
        let dev = DeviceSpec::a100_pcie();
        let part = OpPartition::fused(&d);
        let edges = b.edges as f64;
        let time_at = |k: usize| {
            let tasks = (edges / k as f64).max(4.0);
            let ctx = KernelContext::gtask(tasks, k);
            total_time(&dev, &generate_kernels(&d, &b, &part, &ctx))
        };
        let t1 = time_at(1);
        let t64 = time_at(64);
        let tinf = time_at(20_000);
        assert!(t64 < t1 / 3.0, "K=64 {t64} vs K=1 {t1}");
        assert!(t64 < tinf, "K=64 {t64} vs INF {tinf}");
    }

    #[test]
    fn boundary_bytes_zero_for_fully_fused() {
        let (d, b) = setup();
        assert_eq!(boundary_bytes(&d, &b, &OpPartition::fused(&d)), 0.0);
        let sep = boundary_bytes(&d, &b, &OpPartition::separate(&d));
        // Separate materializes the per-edge weight gather [E, F, F] — huge.
        assert!(sep > b.edges as f64 * 64.0 * 64.0 * 4.0);
    }

    #[test]
    fn dense_alone_is_dense_class() {
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(32)]);
        let w = d.input("w", vec![Dim::Lit(32), Dim::Lit(32)]);
        let y = d.linear(h, w);
        d.mark_output(y);
        let g = rmat(&RmatParams::standard(500, 2000, 3));
        let b = Binding::from_graph(&g);
        let ks = generate_kernels(
            &d,
            &b,
            &OpPartition::separate(&d),
            &KernelContext::tensor_centric(),
        );
        assert_eq!(ks[0].cost.class, ComputeClass::DenseMatmul);
    }
}
