//! Byte-stable binary encoding for cached artifacts.
//!
//! Every cached artifact serializes through [`ByteWriter`] /
//! [`ByteReader`]: little-endian fixed-width integers, length-prefixed
//! strings and sequences, no padding, no platform-dependent layout. The
//! encoding of a value is a pure function of the value — the property the
//! content-addressed store needs so that equal plans hash equally and the
//! roundtrip gate (`C002`) can demand byte-equality after a decode/encode
//! cycle.

/// Failure decoding a cached artifact (truncated buffer, unknown tag,
/// trailing bytes). A store that hits this treats the entry as a miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Appends fixed-layout primitives to a byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes and returns the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte (enum tags).
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (platform-independent width).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed sequence of `usize`s.
    pub fn usize_seq(&mut self, vs: &[usize]) {
        self.usize(vs.len());
        for &v in vs {
            self.usize(v);
        }
    }
}

/// Reads fixed-layout primitives back from an encoded buffer.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless every byte was consumed — decoders call this last so
    /// a buffer with trailing garbage never decodes successfully.
    pub fn expect_end(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError(format!(
                "{} trailing bytes after artifact",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError(format!(
                "buffer truncated: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `usize` written by [`ByteWriter::usize`].
    pub fn usize(&mut self) -> Result<usize, DecodeError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| DecodeError(format!("usize overflow: {v}")))
    }

    /// Reads a bool byte (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DecodeError(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.usize()?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec())
            .map_err(|e| DecodeError(format!("invalid utf-8 string: {e}")))
    }

    /// Reads a length-prefixed sequence of `usize`s.
    pub fn usize_seq(&mut self) -> Result<Vec<usize>, DecodeError> {
        let n = self.usize()?;
        // Guard against corrupt lengths before allocating.
        if n > self.remaining() / 8 {
            return Err(DecodeError(format!(
                "sequence length {n} exceeds remaining buffer"
            )));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.usize()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 3);
        w.usize(123_456);
        w.bool(true);
        w.bool(false);
        w.str("gTask");
        w.usize_seq(&[0, 5, 2]);
        let bytes = w.finish();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.usize().unwrap(), 123_456);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "gTask");
        assert_eq!(r.usize_seq().unwrap(), vec![0, 5, 2]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.u64(42);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes[..5]);
        assert!(r.u64().is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = ByteWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        r.u8().unwrap();
        assert!(r.expect_end().is_err());
    }

    #[test]
    fn corrupt_sequence_length_is_rejected() {
        let mut w = ByteWriter::new();
        w.usize(usize::MAX / 2);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert!(r.usize_seq().is_err());
    }

    #[test]
    fn invalid_bool_is_rejected() {
        let mut r = ByteReader::new(&[3]);
        assert!(r.bool().is_err());
    }
}
