//! The in-process content-addressed planning store.
//!
//! A [`PlanCache`] memoizes the three expensive planning stages —
//! partitioning, DFG transformation, kernel compilation — behind
//! content-derived keys ([`EntryKey`]): the artifact type, the
//! [`FORMAT_VERSION`], a graph component, and a subject component (table
//! hash for plans, DFG hash for rewrites and programs). Entries store the
//! artifact's canonical bytes, and a hit *decodes those bytes* rather than
//! returning a cached object, so the serialization path is exercised on
//! every reuse and a corrupt entry degrades to a miss instead of poisoning
//! the run.
//!
//! Invalidation is component-wise: [`PlanCache::invalidate_graph`] drops
//! exactly the entries whose key carries a stale graph hash — the delta
//! driver in `wisegraph-core` calls it after an edge batch changes the
//! live set, leaving entries for other graphs (and the table/DFG subjects
//! under them) intact.

use crate::artifact::{
    decode_dfg, decode_plan, decode_program, encode_dfg, encode_plan, encode_program,
    CachedArtifact, FORMAT_VERSION,
};
use crate::hash::{hash_dfg, hash_graph, hash_graph_edges, hash_table, Fnv64};
use std::collections::BTreeMap;
use wisegraph_dfg::{transform, Binding, Dfg};
use wisegraph_graph::Graph;
use wisegraph_gtask::{partition_edges, PartitionPlan, PartitionTable};
use wisegraph_kernels::micro::{compile, CompileError, KernelProgram};
use wisegraph_obs::{keys, span, Class, Counters};

/// A content-derived store key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EntryKey {
    /// Which artifact type the entry holds.
    pub artifact: CachedArtifact,
    /// Content hash of the graph component (full graph or live subset).
    pub graph: u64,
    /// Content hash of the subject: the partition table for plans, the
    /// source DFG for rewrites and compiled programs.
    pub subject: u64,
}

impl EntryKey {
    /// Folds the key (plus the format version) into a single digest —
    /// useful for logging/debugging; the store itself keys on the struct.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(u64::from(FORMAT_VERSION));
        h.write(&[self.artifact.tag()]);
        h.write_u64(self.graph);
        h.write_u64(self.subject);
        h.finish()
    }
}

/// The content-addressed planning cache.
#[derive(Debug, Default)]
pub struct PlanCache {
    entries: BTreeMap<EntryKey, Vec<u8>>,
    hits: u64,
    misses: u64,
    invalidations: u64,
    peak_entries: u64,
    peak_bytes: u64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialized bytes currently resident.
    pub fn stored_bytes(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Lookups served from the store.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that recomputed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries dropped by invalidation.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    fn note_size(&mut self) {
        self.peak_entries = self.peak_entries.max(self.entries.len() as u64);
        self.peak_bytes = self.peak_bytes.max(self.stored_bytes() as u64);
    }

    /// Content hash of the full graph (all edges live).
    pub fn graph_key(g: &Graph) -> u64 {
        hash_graph(g)
    }

    /// Content hash of a live edge subset of the graph.
    pub fn graph_edges_key(g: &Graph, live: &[usize]) -> u64 {
        hash_graph_edges(g, live)
    }

    /// Cached graph partition over all edges of `g`.
    pub fn partition_cached(&mut self, g: &Graph, table: &PartitionTable) -> PartitionPlan {
        let live: Vec<usize> = (0..g.num_edges()).collect();
        self.partition_under(hash_graph(g), g, table, &live)
    }

    /// Cached graph partition over a live edge subset (the delta path).
    /// `live` must be sorted ascending (as `IncrementalPlan::live_edges`
    /// returns it) for the key to be canonical.
    pub fn partition_edges_cached(
        &mut self,
        g: &Graph,
        table: &PartitionTable,
        live: &[usize],
    ) -> PartitionPlan {
        // A sorted unique subset covering every edge IS the full graph:
        // use the full-graph key so both entry points share entries.
        let gk = if live.len() == g.num_edges() {
            hash_graph(g)
        } else {
            hash_graph_edges(g, live)
        };
        self.partition_under(gk, g, table, live)
    }

    fn partition_under(
        &mut self,
        graph_key: u64,
        g: &Graph,
        table: &PartitionTable,
        live: &[usize],
    ) -> PartitionPlan {
        let key = EntryKey {
            artifact: CachedArtifact::PartitionPlan,
            graph: graph_key,
            subject: hash_table(table),
        };
        let mut sp = span!("cache.partition", edges = live.len());
        if let Some(bytes) = self.entries.get(&key) {
            if let Ok(plan) = decode_plan(bytes) {
                self.hits += 1;
                sp.arg("hit", 1usize);
                return plan;
            }
            // Undecodable entry: drop it and fall through to recompute.
            self.entries.remove(&key);
            self.invalidations += 1;
        }
        self.misses += 1;
        sp.arg("hit", 0usize);
        let plan = partition_edges(g, table, live);
        self.entries.insert(key, encode_plan(&plan));
        self.note_size();
        plan
    }

    /// Cached transform-optimization of a model DFG under the graph's
    /// whole-scope binding.
    pub fn transform_cached(&mut self, g: &Graph, base: &Dfg) -> Dfg {
        let key = EntryKey {
            artifact: CachedArtifact::TransformedDfg,
            graph: hash_graph(g),
            subject: hash_dfg(base),
        };
        let mut sp = span!("cache.transform", nodes = base.len());
        if let Some(bytes) = self.entries.get(&key) {
            if let Ok(dfg) = decode_dfg(bytes) {
                self.hits += 1;
                sp.arg("hit", 1usize);
                return dfg;
            }
            self.entries.remove(&key);
            self.invalidations += 1;
        }
        self.misses += 1;
        sp.arg("hit", 0usize);
        let binding = Binding::from_graph(g);
        let (dfg, _) = transform::optimize(base, &binding);
        self.entries.insert(key, encode_dfg(&dfg));
        self.note_size();
        dfg
    }

    /// Cached micro-kernel compilation of a DFG against a graph.
    /// Compile *errors* are not cached: they are cheap to rediscover and
    /// usually mean the caller is probing an unsupported combination.
    pub fn compile_cached(
        &mut self,
        g: &Graph,
        dfg: &Dfg,
    ) -> Result<KernelProgram, CompileError> {
        let key = EntryKey {
            artifact: CachedArtifact::KernelProgram,
            graph: hash_graph(g),
            subject: hash_dfg(dfg),
        };
        let mut sp = span!("cache.compile", nodes = dfg.len());
        if let Some(bytes) = self.entries.get(&key) {
            if let Ok(p) = decode_program(bytes) {
                self.hits += 1;
                sp.arg("hit", 1usize);
                return Ok(p);
            }
            self.entries.remove(&key);
            self.invalidations += 1;
        }
        self.misses += 1;
        sp.arg("hit", 0usize);
        let p = compile(dfg, g)?;
        self.entries.insert(key, encode_program(&p));
        self.note_size();
        Ok(p)
    }

    /// Stores an externally produced plan (e.g. a repaired incremental
    /// snapshot that `wisegraph-analysis` has verified) under the given
    /// graph key, so the next lookup for that (graph, table) hits.
    pub fn insert_plan(&mut self, graph_key: u64, plan: &PartitionPlan) {
        let key = EntryKey {
            artifact: CachedArtifact::PartitionPlan,
            graph: graph_key,
            subject: hash_table(&plan.table),
        };
        self.entries.insert(key, encode_plan(plan));
        self.note_size();
    }

    /// Drops every entry whose graph component equals `graph_key` and
    /// returns how many were removed. Entries under other graph hashes —
    /// including other live-set snapshots of the same universe graph —
    /// survive.
    pub fn invalidate_graph(&mut self, graph_key: u64) -> usize {
        let doomed: Vec<EntryKey> = self
            .entries
            .keys()
            .filter(|k| k.graph == graph_key)
            .copied()
            .collect();
        for k in &doomed {
            self.entries.remove(k);
        }
        self.invalidations += doomed.len() as u64;
        doomed.len()
    }

    /// Records the cache's Resource counters (hits, misses, invalidations,
    /// entry/byte high-water marks, hit rate).
    pub fn record_counters(&self, c: &mut Counters) {
        c.add_class(keys::CACHE_HITS, self.hits, Class::Resource);
        c.add_class(keys::CACHE_MISSES, self.misses, Class::Resource);
        c.add_class(keys::CACHE_INVALIDATIONS, self.invalidations, Class::Resource);
        c.record_max(keys::CACHE_ENTRIES, self.peak_entries, Class::Resource);
        c.record_max(keys::CACHE_STORED_BYTES, self.peak_bytes, Class::Resource);
        let lookups = self.hits + self.misses;
        if lookups > 0 {
            let permille = (self.hits as f64 / lookups as f64) * 1000.0;
            c.set_gauge(keys::CACHE_HIT_RATE_PERMILLE, permille, Class::Resource);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_graph::generate::{rmat, RmatParams};
    use wisegraph_gtask::partition;
    use wisegraph_models::ModelKind;

    fn graph(seed: u64) -> Graph {
        rmat(&RmatParams::standard(80, 700, seed).with_edge_types(4))
    }

    #[test]
    fn partition_hits_after_first_miss_and_matches_direct() {
        let g = graph(31);
        let table = PartitionTable::src_batch_per_type(8);
        let mut cache = PlanCache::new();
        let cold = cache.partition_cached(&g, &table);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 0);
        let warm = cache.partition_cached(&g, &table);
        assert_eq!(cache.hits(), 1);
        let direct = partition(&g, &table);
        assert_eq!(cold.tasks, direct.tasks);
        assert_eq!(warm.tasks, direct.tasks);
    }

    #[test]
    fn different_graphs_and_tables_do_not_collide() {
        let g1 = graph(41);
        let g2 = graph(42);
        let mut cache = PlanCache::new();
        let a = cache.partition_cached(&g1, &PartitionTable::vertex_centric());
        let b = cache.partition_cached(&g2, &PartitionTable::vertex_centric());
        let c = cache.partition_cached(&g1, &PartitionTable::edge_batch(16));
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.len(), 3);
        assert_ne!(a.num_tasks(), 0);
        assert_ne!(b.tasks, a.tasks);
        assert_ne!(c.tasks, a.tasks);
    }

    #[test]
    fn transform_and_compile_hit_and_match_direct() {
        let g = graph(43);
        let base = ModelKind::Rgcn.layer_dfg(8, 6);
        let mut cache = PlanCache::new();
        let cold = cache.transform_cached(&g, &base);
        let warm = cache.transform_cached(&g, &base);
        assert_eq!(cache.hits(), 1);
        assert_eq!(crate::artifact::encode_dfg(&cold), crate::artifact::encode_dfg(&warm));

        let p_cold = cache.compile_cached(&g, &cold).unwrap();
        let p_warm = cache.compile_cached(&g, &warm).unwrap();
        assert_eq!(cache.hits(), 2);
        assert_eq!(
            crate::artifact::encode_program(&p_cold),
            crate::artifact::encode_program(&p_warm)
        );
    }

    #[test]
    fn invalidate_graph_is_surgical() {
        let g1 = graph(44);
        let g2 = graph(45);
        let mut cache = PlanCache::new();
        cache.partition_cached(&g1, &PartitionTable::vertex_centric());
        cache.partition_cached(&g1, &PartitionTable::edge_batch(8));
        cache.partition_cached(&g2, &PartitionTable::vertex_centric());
        assert_eq!(cache.len(), 3);
        let dropped = cache.invalidate_graph(PlanCache::graph_key(&g1));
        assert_eq!(dropped, 2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.invalidations(), 2);
        // g2's entry still hits.
        cache.partition_cached(&g2, &PartitionTable::vertex_centric());
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn live_subset_keys_are_distinct_from_full_graph() {
        let g = graph(46);
        let table = PartitionTable::vertex_centric();
        let mut cache = PlanCache::new();
        let all: Vec<usize> = (0..g.num_edges()).collect();
        let sub: Vec<usize> = (0..g.num_edges() / 2).collect();
        cache.partition_cached(&g, &table);
        let via_subset = cache.partition_edges_cached(&g, &table, &all);
        // Same content → same key → hit, even through the other entry point.
        assert_eq!(cache.hits(), 1);
        cache.partition_edges_cached(&g, &table, &sub);
        assert_eq!(cache.misses(), 2);
        assert_eq!(via_subset.total_edges(), g.num_edges());
    }

    #[test]
    fn inserted_plan_is_served_back() {
        let g = graph(47);
        let table = PartitionTable::dst_and_type();
        let plan = partition(&g, &table);
        let mut cache = PlanCache::new();
        let key = PlanCache::graph_key(&g);
        cache.insert_plan(key, &plan);
        let served = cache.partition_cached(&g, &table);
        assert_eq!(cache.hits(), 1);
        assert_eq!(served.tasks, plan.tasks);
    }

    #[test]
    fn counters_report_resource_class() {
        let g = graph(48);
        let mut cache = PlanCache::new();
        cache.partition_cached(&g, &PartitionTable::vertex_centric());
        cache.partition_cached(&g, &PartitionTable::vertex_centric());
        let mut c = Counters::new();
        cache.record_counters(&mut c);
        assert_eq!(c.count(keys::CACHE_HITS), 1);
        assert_eq!(c.count(keys::CACHE_MISSES), 1);
        assert_eq!(c.gauge(keys::CACHE_HIT_RATE_PERMILLE), Some(500.0));
        // Everything the cache reports is Resource-class: absent from the
        // Work-only view the bit-identity gates compare.
        let work_only = c.only(&[Class::Work]);
        assert_eq!(work_only.count(keys::CACHE_HITS), 0);
    }
}
