//! Deterministic content hashing for cache keys.
//!
//! Keys are FNV-1a 64-bit digests of the canonical byte encodings from
//! [`crate::artifact`] (tables, DFGs) or of the raw topology arrays
//! (graphs). FNV is not cryptographic — it does not need to be: the store
//! is an in-process correctness cache, not a trust boundary, and what
//! matters is that the digest is a pure, platform-independent function of
//! the content so identical inputs hit and changed inputs miss.

use crate::artifact;
use wisegraph_dfg::Dfg;
use wisegraph_graph::Graph;
use wisegraph_gtask::PartitionTable;

/// Incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// The offset-basis state.
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Folds bytes into the digest.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Folds a `u64` (little-endian) into the digest.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `u32` (little-endian) into the digest.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Hash of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Content hash of a graph: vertex/edge/type counts plus the full
/// `src`/`dst`/`etype` arrays. Two graphs hash equally iff their topology
/// arrays are identical.
pub fn hash_graph(g: &Graph) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(g.num_vertices() as u64);
    h.write_u64(g.num_edges() as u64);
    h.write_u64(g.num_edge_types() as u64);
    for &s in g.src() {
        h.write_u32(s);
    }
    for &d in g.dst() {
        h.write_u32(d);
    }
    for &t in g.etype() {
        h.write_u32(t);
    }
    h.finish()
}

/// Content hash of a graph restricted to a live edge subset: the delta
/// path's graph component. Covers the counts plus, per live edge, its id
/// and endpoints/type, so inserting or deleting an edge changes the hash
/// (and therefore invalidates the old entries) while leaving unrelated
/// live sets alone. `live` must be sorted ascending for a canonical
/// digest — [`IncrementalPlan::live_edges`] returns it that way.
///
/// [`IncrementalPlan::live_edges`]: wisegraph_gtask::IncrementalPlan::live_edges
pub fn hash_graph_edges(g: &Graph, live: &[usize]) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(g.num_vertices() as u64);
    h.write_u64(g.num_edge_types() as u64);
    h.write_u64(live.len() as u64);
    for &e in live {
        h.write_u64(e as u64);
        h.write_u32(g.src()[e]);
        h.write_u32(g.dst()[e]);
        h.write_u32(g.etype()[e]);
    }
    h.finish()
}

/// Content hash of a partition table (its restriction set), via the
/// canonical byte encoding.
pub fn hash_table(table: &PartitionTable) -> u64 {
    fnv64(&artifact::encode_table(table))
}

/// Content hash of a model DFG, via the canonical byte encoding.
pub fn hash_dfg(dfg: &Dfg) -> u64 {
    fnv64(&artifact::encode_dfg(dfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_graph::generate::{rmat, RmatParams};
    use wisegraph_graph::AttrKind;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn graph_hash_distinguishes_topology() {
        let g1 = rmat(&RmatParams::standard(64, 500, 11).with_edge_types(2));
        let g2 = rmat(&RmatParams::standard(64, 500, 12).with_edge_types(2));
        assert_ne!(hash_graph(&g1), hash_graph(&g2));
        assert_eq!(hash_graph(&g1), hash_graph(&g1));
    }

    #[test]
    fn live_set_hash_tracks_membership() {
        let g = rmat(&RmatParams::standard(64, 500, 13).with_edge_types(2));
        let all: Vec<usize> = (0..g.num_edges()).collect();
        let most: Vec<usize> = (1..g.num_edges()).collect();
        assert_ne!(hash_graph_edges(&g, &all), hash_graph_edges(&g, &most));
        assert_eq!(hash_graph_edges(&g, &all), hash_graph_edges(&g, &all));
    }

    #[test]
    fn table_hash_tracks_restrictions() {
        let a = PartitionTable::vertex_centric();
        let b = PartitionTable::edge_centric();
        let c = PartitionTable::src_batch_per_type(8);
        let c2 = PartitionTable::new()
            .exact(AttrKind::EdgeType, 1)
            .exact(AttrKind::SrcId, 8);
        assert_ne!(hash_table(&a), hash_table(&b));
        // Builder order must not matter: entries are canonically ordered.
        assert_eq!(hash_table(&c), hash_table(&c2));
    }
}
