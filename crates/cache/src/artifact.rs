//! Canonical byte encodings of the planning artifacts the store caches.
//!
//! Three artifact types flow through the planning pipeline — the
//! [`PartitionPlan`] out of the graph partitioner, the transformed model
//! [`Dfg`] out of the rewriter, and the compiled [`KernelProgram`] out of
//! the micro-kernel compiler. Each gets an `encode_*`/`decode_*` pair over
//! [`crate::bytes`] with two contracts the rest of the system leans on:
//!
//! 1. **Canonical**: the encoding is a pure function of the value, so the
//!    content hash of an artifact (or of a key component like the table)
//!    is deterministic across runs and platforms.
//! 2. **Byte-exact roundtrip**: `encode(decode(bytes)) == bytes` for every
//!    buffer `encode` produces. The `C002` lint gate requires every
//!    variant of [`CachedArtifact`] to carry a registered roundtrip test
//!    (`tests/cache_roundtrip.rs`), mirroring the `K006` fused-parity
//!    registry.
//!
//! Enum variants encode as one-byte tags in declaration order; changing an
//! enum's shape is a format break and must bump [`FORMAT_VERSION`], which
//! is folded into every store key so stale encodings can never be decoded
//! by a newer reader.

use crate::bytes::{ByteReader, ByteWriter, DecodeError};
use wisegraph_dfg::{Dfg, Dim, NodeId, OpKind, SymShape};
use wisegraph_graph::AttrKind;
use wisegraph_gtask::{GTask, PartitionPlan, PartitionTable, Restriction};
use wisegraph_kernels::micro::{EwOp, KernelProgram, MicroKernel, Reg};

/// Version folded into every cache key; bump on any encoding change.
pub const FORMAT_VERSION: u32 = 1;

/// The artifact types the content-addressed store holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CachedArtifact {
    /// A graph partition plan (table + gTasks).
    PartitionPlan,
    /// A transform-optimized model DFG.
    TransformedDfg,
    /// A compiled micro-kernel program.
    KernelProgram,
}

impl CachedArtifact {
    /// Every cached artifact type, in key order.
    pub const ALL: [CachedArtifact; 3] = [
        CachedArtifact::PartitionPlan,
        CachedArtifact::TransformedDfg,
        CachedArtifact::KernelProgram,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            CachedArtifact::PartitionPlan => "partition-plan",
            CachedArtifact::TransformedDfg => "transformed-dfg",
            CachedArtifact::KernelProgram => "kernel-program",
        }
    }

    /// Name of the roundtrip test `tests/cache_roundtrip.rs` must define
    /// for this artifact (the `C002` registry contract).
    pub fn roundtrip_test(self) -> &'static str {
        match self {
            CachedArtifact::PartitionPlan => "roundtrip_partition_plan",
            CachedArtifact::TransformedDfg => "roundtrip_transformed_dfg",
            CachedArtifact::KernelProgram => "roundtrip_kernel_program",
        }
    }

    /// One-byte key tag.
    pub fn tag(self) -> u8 {
        match self {
            CachedArtifact::PartitionPlan => 0,
            CachedArtifact::TransformedDfg => 1,
            CachedArtifact::KernelProgram => 2,
        }
    }
}

// ---------------------------------------------------------------------------
// Attribute kinds
// ---------------------------------------------------------------------------

fn attr_code(attr: AttrKind) -> u8 {
    AttrKind::ALL
        .iter()
        .position(|&a| a == attr)
        .expect("attr in ALL") as u8
}

fn attr_from(code: u8) -> Result<AttrKind, DecodeError> {
    AttrKind::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| DecodeError(format!("invalid attr code {code}")))
}

// ---------------------------------------------------------------------------
// Partition tables and plans
// ---------------------------------------------------------------------------

/// Encodes a partition table: the (attr, restriction) entries in canonical
/// (`AttrKind`) order.
pub fn encode_table(table: &PartitionTable) -> Vec<u8> {
    let mut w = ByteWriter::new();
    let attrs = table.restricted_attrs();
    w.usize(attrs.len());
    for attr in attrs {
        w.u8(attr_code(attr));
        match table.restriction(attr) {
            Restriction::Exact(k) => {
                w.u8(0);
                w.u64(k);
            }
            Restriction::Min => w.u8(1),
            Restriction::Free => {
                // `Free` is the absence of an entry; a table never stores it.
                unreachable!("restricted_attrs returned a Free attribute")
            }
        }
    }
    w.finish()
}

/// Decodes a partition table.
pub fn decode_table(bytes: &[u8]) -> Result<PartitionTable, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let table = read_table(&mut r)?;
    r.expect_end()?;
    Ok(table)
}

fn read_table(r: &mut ByteReader) -> Result<PartitionTable, DecodeError> {
    let n = r.usize()?;
    let mut table = PartitionTable::new();
    for _ in 0..n {
        let attr = attr_from(r.u8()?)?;
        match r.u8()? {
            0 => {
                let k = r.u64()?;
                table = table.exact(attr, k);
            }
            1 => table = table.min(attr),
            t => return Err(DecodeError(format!("invalid restriction tag {t}"))),
        }
    }
    Ok(table)
}

/// Encodes a partition plan: its table, then each gTask's edge list and
/// recorded uniqueness map.
pub fn encode_plan(plan: &PartitionPlan) -> Vec<u8> {
    let mut w = ByteWriter::new();
    write_table_nested(&mut w, &plan.table);
    w.usize(plan.tasks.len());
    for t in &plan.tasks {
        w.usize_seq(&t.edges);
        w.usize(t.uniq.len());
        for (&attr, &count) in &t.uniq {
            w.u8(attr_code(attr));
            w.usize(count);
        }
    }
    w.finish()
}

/// Decodes a partition plan.
pub fn decode_plan(bytes: &[u8]) -> Result<PartitionPlan, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let table = read_table_nested(&mut r)?;
    let num_tasks = r.usize()?;
    let mut tasks = Vec::with_capacity(num_tasks.min(bytes.len()));
    for _ in 0..num_tasks {
        let edges = r.usize_seq()?;
        let n = r.usize()?;
        let mut uniq = std::collections::BTreeMap::new();
        for _ in 0..n {
            let attr = attr_from(r.u8()?)?;
            let count = r.usize()?;
            uniq.insert(attr, count);
        }
        tasks.push(GTask { edges, uniq });
    }
    r.expect_end()?;
    Ok(PartitionPlan { table, tasks })
}

fn write_table_nested(w: &mut ByteWriter, table: &PartitionTable) {
    let body = encode_table(table);
    w.usize(body.len());
    for b in body {
        w.u8(b);
    }
}

fn read_table_nested(r: &mut ByteReader) -> Result<PartitionTable, DecodeError> {
    let len = r.usize()?;
    if len > r.remaining() {
        return Err(DecodeError(format!(
            "nested table length {len} exceeds buffer"
        )));
    }
    let mut inner_bytes = Vec::with_capacity(len);
    for _ in 0..len {
        inner_bytes.push(r.u8()?);
    }
    decode_table(&inner_bytes)
}

// ---------------------------------------------------------------------------
// DFGs
// ---------------------------------------------------------------------------

fn write_dim(w: &mut ByteWriter, d: Dim) {
    match d {
        Dim::Vertices => w.u8(0),
        Dim::Edges => w.u8(1),
        Dim::Unique(a) => {
            w.u8(2);
            w.u8(attr_code(a));
        }
        Dim::EdgeTypes => w.u8(3),
        Dim::Lit(n) => {
            w.u8(4);
            w.usize(n);
        }
    }
}

fn read_dim(r: &mut ByteReader) -> Result<Dim, DecodeError> {
    Ok(match r.u8()? {
        0 => Dim::Vertices,
        1 => Dim::Edges,
        2 => Dim::Unique(attr_from(r.u8()?)?),
        3 => Dim::EdgeTypes,
        4 => Dim::Lit(r.usize()?),
        t => return Err(DecodeError(format!("invalid dim tag {t}"))),
    })
}

fn write_shape(w: &mut ByteWriter, s: &SymShape) {
    w.usize(s.len());
    for &d in s {
        write_dim(w, d);
    }
}

fn read_shape(r: &mut ByteReader) -> Result<SymShape, DecodeError> {
    let n = r.usize()?;
    if n > r.remaining() {
        return Err(DecodeError(format!("shape rank {n} exceeds buffer")));
    }
    let mut s = Vec::with_capacity(n);
    for _ in 0..n {
        s.push(read_dim(r)?);
    }
    Ok(s)
}

fn write_op(w: &mut ByteWriter, op: &OpKind) {
    match op {
        OpKind::Input { name, shape } => {
            w.u8(0);
            w.str(name);
            write_shape(w, shape);
        }
        OpKind::EdgeAttr(a) => {
            w.u8(1);
            w.u8(attr_code(*a));
        }
        OpKind::UniqueValues(a) => {
            w.u8(2);
            w.u8(attr_code(*a));
        }
        OpKind::UniqueMap(a) => {
            w.u8(3);
            w.u8(attr_code(*a));
        }
        OpKind::Index => w.u8(4),
        OpKind::Index2D => w.u8(5),
        OpKind::IndexAdd { out } => {
            w.u8(6);
            write_dim(w, *out);
        }
        OpKind::Linear => w.u8(7),
        OpKind::PerEdgeLinear => w.u8(8),
        OpKind::PairwiseLinear => w.u8(9),
        OpKind::LstmAggregate { hidden } => {
            w.u8(10);
            w.usize(*hidden);
        }
        OpKind::Add => w.u8(11),
        OpKind::Mul => w.u8(12),
        OpKind::Relu => w.u8(13),
        OpKind::LeakyRelu => w.u8(14),
        OpKind::ScaleByDegreeInv => w.u8(15),
        OpKind::SegmentSoftmax => w.u8(16),
        OpKind::ScaleRowsByScalar => w.u8(17),
        OpKind::ConcatCols => w.u8(18),
        OpKind::Transpose => w.u8(19),
        OpKind::SqueezeCol => w.u8(20),
        OpKind::UnsqueezeCol => w.u8(21),
    }
}

fn read_op(r: &mut ByteReader) -> Result<OpKind, DecodeError> {
    Ok(match r.u8()? {
        0 => OpKind::Input {
            name: r.str()?,
            shape: read_shape(r)?,
        },
        1 => OpKind::EdgeAttr(attr_from(r.u8()?)?),
        2 => OpKind::UniqueValues(attr_from(r.u8()?)?),
        3 => OpKind::UniqueMap(attr_from(r.u8()?)?),
        4 => OpKind::Index,
        5 => OpKind::Index2D,
        6 => OpKind::IndexAdd { out: read_dim(r)? },
        7 => OpKind::Linear,
        8 => OpKind::PerEdgeLinear,
        9 => OpKind::PairwiseLinear,
        10 => OpKind::LstmAggregate {
            hidden: r.usize()?,
        },
        11 => OpKind::Add,
        12 => OpKind::Mul,
        13 => OpKind::Relu,
        14 => OpKind::LeakyRelu,
        15 => OpKind::ScaleByDegreeInv,
        16 => OpKind::SegmentSoftmax,
        17 => OpKind::ScaleRowsByScalar,
        18 => OpKind::ConcatCols,
        19 => OpKind::Transpose,
        20 => OpKind::SqueezeCol,
        21 => OpKind::UnsqueezeCol,
        t => return Err(DecodeError(format!("invalid op tag {t}"))),
    })
}

/// Encodes a DFG: every node (op, inputs, recorded shape) in id order,
/// then the output list.
pub fn encode_dfg(dfg: &Dfg) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.usize(dfg.len());
    for node in dfg.nodes() {
        write_op(&mut w, &node.kind);
        w.usize(node.inputs.len());
        for &NodeId(i) in &node.inputs {
            w.usize(i);
        }
        write_shape(&mut w, &node.shape);
    }
    let outputs: Vec<usize> = dfg.outputs().iter().map(|&NodeId(i)| i).collect();
    w.usize_seq(&outputs);
    w.finish()
}

/// Decodes a DFG. Shapes are restored as recorded (not re-inferred), via
/// the unchecked constructor; a cache user re-verifies decoded DFGs with
/// `wisegraph-analysis` before trusting them, exactly as it would a
/// freshly transformed one.
pub fn decode_dfg(bytes: &[u8]) -> Result<Dfg, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let n = r.usize()?;
    if n > bytes.len() {
        return Err(DecodeError(format!("node count {n} exceeds buffer")));
    }
    let mut dfg = Dfg::new();
    for _ in 0..n {
        let kind = read_op(&mut r)?;
        let num_inputs = r.usize()?;
        if num_inputs > r.remaining() {
            return Err(DecodeError(format!(
                "input count {num_inputs} exceeds buffer"
            )));
        }
        let mut inputs = Vec::with_capacity(num_inputs);
        for _ in 0..num_inputs {
            let i = r.usize()?;
            if i >= n {
                return Err(DecodeError(format!("input id {i} out of range")));
            }
            inputs.push(NodeId(i));
        }
        let shape = read_shape(&mut r)?;
        dfg.add_node_unchecked(kind, inputs, shape);
    }
    for i in r.usize_seq()? {
        if i >= n {
            return Err(DecodeError(format!("output id {i} out of range")));
        }
        dfg.mark_output(NodeId(i));
    }
    r.expect_end()?;
    Ok(dfg)
}

// ---------------------------------------------------------------------------
// Kernel programs
// ---------------------------------------------------------------------------

fn write_reg(w: &mut ByteWriter, r: Reg) {
    w.usize(r.0);
}

fn read_reg(r: &mut ByteReader) -> Result<Reg, DecodeError> {
    Ok(Reg(r.usize()?))
}

fn ew_code(op: EwOp) -> u8 {
    match op {
        EwOp::Add => 0,
        EwOp::Mul => 1,
        EwOp::Relu => 2,
        EwOp::LeakyRelu => 3,
    }
}

fn ew_from(code: u8) -> Result<EwOp, DecodeError> {
    Ok(match code {
        0 => EwOp::Add,
        1 => EwOp::Mul,
        2 => EwOp::Relu,
        3 => EwOp::LeakyRelu,
        t => return Err(DecodeError(format!("invalid elementwise tag {t}"))),
    })
}

fn write_micro(w: &mut ByteWriter, k: &MicroKernel) {
    match k {
        MicroKernel::LoadStream { attr, out } => {
            w.u8(0);
            w.u8(attr_code(*attr));
            write_reg(w, *out);
        }
        MicroKernel::Unique {
            stream,
            values,
            map,
        } => {
            w.u8(1);
            write_reg(w, *stream);
            write_reg(w, *values);
            write_reg(w, *map);
        }
        MicroKernel::GatherRows { src, idx, out } => {
            w.u8(2);
            w.str(src);
            write_reg(w, *idx);
            write_reg(w, *out);
        }
        MicroKernel::GatherRegRows { src, idx, out } => {
            w.u8(3);
            write_reg(w, *src);
            write_reg(w, *idx);
            write_reg(w, *out);
        }
        MicroKernel::GatherReg2D {
            src,
            idx1,
            idx2,
            out,
        } => {
            w.u8(4);
            write_reg(w, *src);
            write_reg(w, *idx1);
            write_reg(w, *idx2);
            write_reg(w, *out);
        }
        MicroKernel::Gather2DGlobal {
            src,
            idx1,
            idx2,
            out,
        } => {
            w.u8(5);
            w.str(src);
            write_reg(w, *idx1);
            write_reg(w, *idx2);
            write_reg(w, *out);
        }
        MicroKernel::PairwiseReg { x, w: wt, out } => {
            w.u8(6);
            write_reg(w, *x);
            write_reg(w, *wt);
            write_reg(w, *out);
        }
        MicroKernel::MatMatGlobal { x, w: wt, out } => {
            w.u8(7);
            write_reg(w, *x);
            w.str(wt);
            write_reg(w, *out);
        }
        MicroKernel::PerRowVecMat { x, w: wt, out } => {
            w.u8(8);
            write_reg(w, *x);
            write_reg(w, *wt);
            write_reg(w, *out);
        }
        MicroKernel::PairwiseGlobal { x, w: wt, out } => {
            w.u8(9);
            write_reg(w, *x);
            w.str(wt);
            write_reg(w, *out);
        }
        MicroKernel::GatherWeight { src, idx, out } => {
            w.u8(10);
            w.str(src);
            write_reg(w, *idx);
            write_reg(w, *out);
        }
        MicroKernel::Elementwise { op, a, b, out } => {
            w.u8(11);
            w.u8(ew_code(*op));
            write_reg(w, *a);
            match b {
                Some(b) => {
                    w.bool(true);
                    write_reg(w, *b);
                }
                None => w.bool(false),
            }
            write_reg(w, *out);
        }
        MicroKernel::Squeeze { x, out } => {
            w.u8(12);
            write_reg(w, *x);
            write_reg(w, *out);
        }
        MicroKernel::SegmentSoftmax { scores, seg, out } => {
            w.u8(13);
            write_reg(w, *scores);
            write_reg(w, *seg);
            write_reg(w, *out);
        }
        MicroKernel::ScaleRows { x, s, out } => {
            w.u8(14);
            write_reg(w, *x);
            write_reg(w, *s);
            write_reg(w, *out);
        }
        MicroKernel::ScatterAdd { data, idx } => {
            w.u8(15);
            write_reg(w, *data);
            write_reg(w, *idx);
        }
    }
}

fn read_micro(r: &mut ByteReader) -> Result<MicroKernel, DecodeError> {
    Ok(match r.u8()? {
        0 => MicroKernel::LoadStream {
            attr: attr_from(r.u8()?)?,
            out: read_reg(r)?,
        },
        1 => MicroKernel::Unique {
            stream: read_reg(r)?,
            values: read_reg(r)?,
            map: read_reg(r)?,
        },
        2 => MicroKernel::GatherRows {
            src: r.str()?,
            idx: read_reg(r)?,
            out: read_reg(r)?,
        },
        3 => MicroKernel::GatherRegRows {
            src: read_reg(r)?,
            idx: read_reg(r)?,
            out: read_reg(r)?,
        },
        4 => MicroKernel::GatherReg2D {
            src: read_reg(r)?,
            idx1: read_reg(r)?,
            idx2: read_reg(r)?,
            out: read_reg(r)?,
        },
        5 => MicroKernel::Gather2DGlobal {
            src: r.str()?,
            idx1: read_reg(r)?,
            idx2: read_reg(r)?,
            out: read_reg(r)?,
        },
        6 => MicroKernel::PairwiseReg {
            x: read_reg(r)?,
            w: read_reg(r)?,
            out: read_reg(r)?,
        },
        7 => MicroKernel::MatMatGlobal {
            x: read_reg(r)?,
            w: r.str()?,
            out: read_reg(r)?,
        },
        8 => MicroKernel::PerRowVecMat {
            x: read_reg(r)?,
            w: read_reg(r)?,
            out: read_reg(r)?,
        },
        9 => MicroKernel::PairwiseGlobal {
            x: read_reg(r)?,
            w: r.str()?,
            out: read_reg(r)?,
        },
        10 => MicroKernel::GatherWeight {
            src: r.str()?,
            idx: read_reg(r)?,
            out: read_reg(r)?,
        },
        11 => {
            let op = ew_from(r.u8()?)?;
            let a = read_reg(r)?;
            let b = if r.bool()? { Some(read_reg(r)?) } else { None };
            let out = read_reg(r)?;
            MicroKernel::Elementwise { op, a, b, out }
        }
        12 => MicroKernel::Squeeze {
            x: read_reg(r)?,
            out: read_reg(r)?,
        },
        13 => MicroKernel::SegmentSoftmax {
            scores: read_reg(r)?,
            seg: read_reg(r)?,
            out: read_reg(r)?,
        },
        14 => MicroKernel::ScaleRows {
            x: read_reg(r)?,
            s: read_reg(r)?,
            out: read_reg(r)?,
        },
        15 => MicroKernel::ScatterAdd {
            data: read_reg(r)?,
            idx: read_reg(r)?,
        },
        t => return Err(DecodeError(format!("invalid micro-kernel tag {t}"))),
    })
}

/// Encodes a compiled kernel program.
pub fn encode_program(p: &KernelProgram) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.usize(p.ops.len());
    for op in &p.ops {
        write_micro(&mut w, op);
    }
    w.usize(p.num_regs);
    w.usize(p.out_rows);
    w.usize(p.out_width);
    w.usize(p.reduce_node.0);
    let prologue: Vec<usize> = p.prologue.iter().map(|&NodeId(i)| i).collect();
    w.usize_seq(&prologue);
    w.bool(p.requires_dst_complete);
    w.finish()
}

/// Decodes a compiled kernel program.
pub fn decode_program(bytes: &[u8]) -> Result<KernelProgram, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let n = r.usize()?;
    if n > bytes.len() {
        return Err(DecodeError(format!("op count {n} exceeds buffer")));
    }
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        ops.push(read_micro(&mut r)?);
    }
    let num_regs = r.usize()?;
    let out_rows = r.usize()?;
    let out_width = r.usize()?;
    let reduce_node = NodeId(r.usize()?);
    let prologue: Vec<NodeId> = r.usize_seq()?.into_iter().map(NodeId).collect();
    let requires_dst_complete = r.bool()?;
    r.expect_end()?;
    Ok(KernelProgram {
        ops,
        num_regs,
        out_rows,
        out_width,
        reduce_node,
        prologue,
        requires_dst_complete,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_dfg::transform;
    use wisegraph_dfg::Binding;
    use wisegraph_graph::generate::{rmat, RmatParams};
    use wisegraph_gtask::partition;
    use wisegraph_kernels::micro::compile;
    use wisegraph_models::ModelKind;

    fn graph() -> wisegraph_graph::Graph {
        rmat(&RmatParams::standard(80, 600, 21).with_edge_types(4))
    }

    #[test]
    fn table_roundtrips_for_all_classics() {
        for table in [
            PartitionTable::new(),
            PartitionTable::vertex_centric(),
            PartitionTable::edge_centric(),
            PartitionTable::two_d(4),
            PartitionTable::dst_and_type(),
            PartitionTable::dst_batch_min_degree(8),
            PartitionTable::src_batch_per_type(16),
            PartitionTable::edge_batch(64),
        ] {
            let bytes = encode_table(&table);
            let back = decode_table(&bytes).unwrap();
            assert_eq!(back, table);
            assert_eq!(encode_table(&back), bytes, "byte-stable: [{table}]");
        }
    }

    #[test]
    fn plan_roundtrips_byte_exact() {
        let g = graph();
        for table in [
            PartitionTable::vertex_centric(),
            PartitionTable::src_batch_per_type(8),
            PartitionTable::dst_batch_min_degree(4),
        ] {
            let plan = partition(&g, &table);
            let bytes = encode_plan(&plan);
            let back = decode_plan(&bytes).unwrap();
            assert_eq!(back.table, plan.table);
            assert_eq!(back.tasks, plan.tasks);
            assert_eq!(encode_plan(&back), bytes);
        }
    }

    #[test]
    fn dfg_roundtrips_for_all_models() {
        let g = graph();
        let binding = Binding::from_graph(&g);
        for model in [
            ModelKind::Gcn,
            ModelKind::Rgcn,
            ModelKind::Gat,
            ModelKind::Sage,
        ] {
            let base = model.layer_dfg(8, 6);
            let (opt, _) = transform::optimize(&base, &binding);
            for dfg in [&base, &opt] {
                let bytes = encode_dfg(dfg);
                let back = decode_dfg(&bytes).unwrap();
                assert_eq!(back.len(), dfg.len());
                assert_eq!(back.outputs(), dfg.outputs());
                for (a, b) in back.nodes().iter().zip(dfg.nodes()) {
                    assert_eq!(a.kind, b.kind);
                    assert_eq!(a.inputs, b.inputs);
                    assert_eq!(a.shape, b.shape);
                }
                assert_eq!(encode_dfg(&back), bytes);
            }
        }
    }

    #[test]
    fn program_roundtrips_for_all_models() {
        let g = graph();
        let binding = Binding::from_graph(&g);
        for model in [
            ModelKind::Gcn,
            ModelKind::Rgcn,
            ModelKind::Gat,
            ModelKind::Sage,
        ] {
            let (dfg, _) = transform::optimize(&model.layer_dfg(8, 6), &binding);
            let p = compile(&dfg, &g).expect("models compile");
            let bytes = encode_program(&p);
            let back = decode_program(&bytes).unwrap();
            assert_eq!(encode_program(&back), bytes);
            assert_eq!(back.num_regs, p.num_regs);
            assert_eq!(back.ops.len(), p.ops.len());
            assert_eq!(back.reduce_node, p.reduce_node);
            assert_eq!(back.prologue, p.prologue);
            assert_eq!(back.requires_dst_complete, p.requires_dst_complete);
        }
    }

    #[test]
    fn corrupt_buffers_decode_to_errors() {
        let g = graph();
        let plan = partition(&g, &PartitionTable::vertex_centric());
        let mut bytes = encode_plan(&plan);
        bytes.truncate(bytes.len() / 2);
        assert!(decode_plan(&bytes).is_err());
        assert!(decode_dfg(&[9, 9, 9]).is_err());
        assert!(decode_program(&[255]).is_err());
    }
}
