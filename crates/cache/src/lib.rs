//! Content-addressed planning cache (the "plan reuse" answer of §6.3,
//! mechanically modeled on content-addressed build stores).
//!
//! Planning a layer costs three nontrivial stages — graph partitioning
//! (O(E log E)), DFG transform-optimization, and micro-kernel compilation.
//! All three are pure functions of content the workspace can hash
//! deterministically: the graph topology (or its live edge subset), the
//! partition table's restriction set, and the model DFG. This crate keys a
//! byte store on exactly those hashes so a warm run skips all three stages
//! and decodes the artifacts instead:
//!
//! - [`bytes`]: the byte-stable little-endian encoding layer;
//! - [`artifact`]: canonical encode/decode for [`PartitionPlan`],
//!   transformed [`Dfg`], and [`KernelProgram`] artifacts, plus the
//!   [`CachedArtifact`] registry the `C002` roundtrip-test gate walks;
//! - [`hash`]: FNV-1a content hashing of the key components;
//! - [`store`]: the [`PlanCache`] itself — cached entry points, surgical
//!   per-graph invalidation, and Resource-class hit/miss counters.
//!
//! Correctness stance: hits decode stored bytes (never return live
//! objects), decode failures degrade to misses, everything the cache
//! records in [`wisegraph_obs`] is `Resource`-class so cached and uncached
//! runs stay bit-identical in their `Work` counters — the invariant
//! `wisegraph-prof --check` enforces.
//!
//! [`PartitionPlan`]: wisegraph_gtask::PartitionPlan
//! [`Dfg`]: wisegraph_dfg::Dfg
//! [`KernelProgram`]: wisegraph_kernels::micro::KernelProgram
//! [`CachedArtifact`]: artifact::CachedArtifact
//! [`PlanCache`]: store::PlanCache

pub mod artifact;
pub mod bytes;
pub mod hash;
pub mod store;

pub use artifact::{CachedArtifact, FORMAT_VERSION};
pub use bytes::{ByteReader, ByteWriter, DecodeError};
pub use hash::{fnv64, hash_dfg, hash_graph, hash_graph_edges, hash_table, Fnv64};
pub use store::{EntryKey, PlanCache};
