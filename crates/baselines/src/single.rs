//! Single-GPU baseline executors (the columns of Figure 13).

use wisegraph_dfg::Binding;
use wisegraph_graph::Graph;
use wisegraph_kernels::{
    generate::{boundary_bytes, generate_kernels, total_time},
    KernelContext, OpPartition,
};
use wisegraph_models::ModelKind;
use wisegraph_sim::{ComputeClass, DeviceSpec, KernelCost};

/// Forward + backward cost multiplier: the backward pass replays roughly
/// the forward workload twice (gradients w.r.t. inputs and weights).
pub const TRAIN_FACTOR: f64 = 3.0;

/// Layer configuration of the evaluated models (paper: 3 layers, hidden 256
/// for single-GPU; hidden 32 for multi-GPU full graph).
#[derive(Clone, Copy, Debug)]
pub struct LayerDims {
    /// Input feature dimension (Table 1 "Dim.").
    pub f_in: usize,
    /// Hidden dimension.
    pub hidden: usize,
    /// Output classes.
    pub classes: usize,
    /// Number of layers.
    pub layers: usize,
}

impl LayerDims {
    /// The paper's single-GPU setting: 3 layers, hidden 256.
    pub fn paper_single(f_in: usize, classes: usize) -> Self {
        Self {
            f_in,
            hidden: 256,
            classes,
            layers: 3,
        }
    }

    /// The `(f_in, f_out)` widths of layer `l`.
    pub fn layer_io(&self, l: usize) -> (usize, usize) {
        let fi = if l == 0 { self.f_in } else { self.hidden };
        let fo = if l + 1 == self.layers {
            self.classes
        } else {
            self.hidden
        };
        (fi, fo)
    }
}

/// Outcome of estimating one system on one workload.
#[derive(Clone, Copy, Debug)]
pub struct ExecutionEstimate {
    /// Per-training-iteration time in seconds (at the generated graph's
    /// scale; harnesses multiply by the dataset scale factor).
    pub time_per_iter: f64,
    /// Peak device memory in bytes.
    pub memory_bytes: f64,
    /// Whether the plan exceeds device memory.
    pub oom: bool,
}

/// The single-GPU baseline systems.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Baseline {
    /// PyTorch Geometric: tensor-centric, one kernel per operation, full
    /// materialization of per-edge tensors.
    PygT,
    /// DGL: tensor-centric for complex models (with fused message kernels
    /// and segmented GEMMs), graph-centric fused aggregation for simple
    /// models.
    Dgl,
    /// Seastar: vertex-centric, everything fused, edge-by-edge neural ops.
    SeastarG,
    /// GNNAdvisor: vertex-centric with neighbor grouping (small batches).
    GnnAdvisorG,
    /// TC-GNN: sparse-to-dense tiles driving tensor cores.
    TcgnnG,
}

impl Baseline {
    /// The columns of Figure 13 for a given model (complex models are only
    /// compared against PyG, DGL and Seastar; simple models add GNNAdvisor
    /// and TC-GNN).
    pub fn columns_for(model: ModelKind) -> Vec<Baseline> {
        match model {
            ModelKind::SageLstm => vec![Baseline::PygT, Baseline::Dgl],
            ModelKind::Rgcn | ModelKind::Gat => {
                vec![Baseline::PygT, Baseline::Dgl, Baseline::SeastarG]
            }
            ModelKind::Sage | ModelKind::Gcn => vec![
                Baseline::PygT,
                Baseline::Dgl,
                Baseline::GnnAdvisorG,
                Baseline::SeastarG,
                Baseline::TcgnnG,
            ],
        }
    }

    /// Display name with partition-method suffix, as in Figure 13's x-axis.
    pub fn label(self, model: ModelKind) -> &'static str {
        match self {
            Baseline::PygT => "PyG-T",
            Baseline::Dgl => {
                if model.is_complex() {
                    "DGL-T"
                } else {
                    "DGL-G"
                }
            }
            Baseline::SeastarG => "Seastar-G",
            Baseline::GnnAdvisorG => "GNNA-G",
            Baseline::TcgnnG => "TCGNN-G",
        }
    }

    /// Estimates one training iteration of `model` on `g`.
    pub fn estimate(
        self,
        g: &Graph,
        model: ModelKind,
        dims: &LayerDims,
        dev: &DeviceSpec,
    ) -> ExecutionEstimate {
        let binding = Binding::from_graph(g);
        let mut time = 0.0;
        let mut transient: f64 = 0.0;
        for l in 0..dims.layers {
            let (fi, fo) = dims.layer_io(l);
            let dfg = model.layer_dfg(fi, fo);
            let (layer_time, layer_bytes) = match self {
                Baseline::PygT => {
                    if model == ModelKind::Rgcn {
                        // PyG's RGCNConv loops over relations: one
                        // gather / matmul / scatter triple per type (no
                        // [E, F, F'] weight materialization, but 3·T
                        // launches and unsorted accesses).
                        pyg_rgcn_stream(g, fi, fo, dev)
                    } else {
                        let part = OpPartition::separate(&dfg);
                        let mut ctx = KernelContext::tensor_centric();
                        if model == ModelKind::SageLstm {
                            // PyG batches arbitrary 64-vertex chunks.
                            ctx.batch_rows = 64;
                            ctx = ctx.with_lstm_padding(chunked_lstm_padding(g, 64));
                        }
                        let ks = generate_kernels(&dfg, &binding, &part, &ctx);
                        (total_time(dev, &ks), boundary_bytes(&dfg, &binding, &part))
                    }
                }
                Baseline::Dgl => {
                    if model == ModelKind::Rgcn {
                        dgl_rgcn_stream(g, fi, fo, dev)
                    } else {
                        let part = OpPartition::dense_separate_rest_fused(&dfg);
                        // DGL's gSpMM is CSR-based: it accumulates per
                        // destination row and writes it once.
                        let dst_rows =
                            g.in_degree().iter().filter(|&&d| d > 0).count();
                        let mut ctx = KernelContext::tensor_centric()
                            .with_scatter_dedup(
                                dst_rows as f64 / g.num_edges().max(1) as f64,
                            );
                        if model == ModelKind::SageLstm {
                            // DGL's degree bucketing batches ~64 sequences
                            // per bucket and pads less than raw batching,
                            // but still pays within-bucket waste.
                            ctx.batch_rows = 64;
                            ctx = ctx.with_lstm_padding(
                                1.0 + 0.5 * (chunked_lstm_padding(g, 64) - 1.0),
                            );
                        }
                        let ks = generate_kernels(&dfg, &binding, &part, &ctx);
                        (total_time(dev, &ks), boundary_bytes(&dfg, &binding, &part))
                    }
                }
                Baseline::SeastarG => {
                    let part = OpPartition::fused(&dfg);
                    // Vertex-centric: per-destination accumulation on chip.
                    let dst_rows = g.in_degree().iter().filter(|&&d| d > 0).count();
                    let ctx = KernelContext::graph_centric(g.num_vertices() as f64)
                        .with_scatter_dedup(dst_rows as f64 / g.num_edges().max(1) as f64);
                    let ks = generate_kernels(&dfg, &binding, &part, &ctx);
                    (total_time(dev, &ks), boundary_bytes(&dfg, &binding, &part))
                }
                Baseline::GnnAdvisorG => {
                    // Neighbor grouping: small fixed batches of edges per
                    // thread group, sorted for coalescing; destination-major
                    // like vertex-centric.
                    let part = OpPartition::fused(&dfg);
                    let dst_rows = g.in_degree().iter().filter(|&&d| d > 0).count();
                    let ctx = KernelContext {
                        num_tasks: (g.num_edges() as f64 / 4.0).max(1.0),
                        batch_rows: 4,
                        coalesced: true,
                        onchip_rows: 256,
                        lstm_padding: 1.0,
                        gather_dedup: 1.0,
                        scatter_dedup: (dst_rows as f64
                            / g.num_edges().max(1) as f64)
                            .clamp(0.0, 1.0),
                    };
                    let ks = generate_kernels(&dfg, &binding, &part, &ctx);
                    (total_time(dev, &ks), boundary_bytes(&dfg, &binding, &part))
                }
                Baseline::TcgnnG => {
                    // Sparse-to-dense 16×16 tiles: tensor cores but padded
                    // tiles inflate the effective workload; tiles are
                    // destination-major, so scatters accumulate per row.
                    let part = OpPartition::fused(&dfg);
                    let dst_rows = g.in_degree().iter().filter(|&&d| d > 0).count();
                    let ctx = KernelContext {
                        num_tasks: (g.num_edges() as f64 / 16.0).max(1.0),
                        batch_rows: 16,
                        coalesced: true,
                        onchip_rows: 256,
                        lstm_padding: 1.0,
                        gather_dedup: 1.0,
                        scatter_dedup: (dst_rows as f64
                            / g.num_edges().max(1) as f64)
                            .clamp(0.0, 1.0),
                    };
                    let mut ks = generate_kernels(&dfg, &binding, &part, &ctx);
                    for k in &mut ks {
                        k.cost.flops *= 1.5; // tile padding overhead
                        k.cost.bytes *= 1.3;
                    }
                    (total_time(dev, &ks), boundary_bytes(&dfg, &binding, &part))
                }
            };
            time += layer_time;
            transient = transient.max(layer_bytes);
        }
        let persistent = persistent_bytes(g, dims);
        let memory = persistent + transient;
        ExecutionEstimate {
            time_per_iter: time * TRAIN_FACTOR,
            memory_bytes: memory,
            oom: memory > dev.mem_capacity,
        }
    }
}

/// Persistent memory: graph topology, input features, per-layer activations
/// kept for the backward pass, and weights.
pub fn persistent_bytes(g: &Graph, dims: &LayerDims) -> f64 {
    let v = g.num_vertices() as f64;
    let mut bytes = g.topology_bytes() as f64 + v * dims.f_in as f64 * 4.0;
    for l in 0..dims.layers {
        let (fi, fo) = dims.layer_io(l);
        bytes += v * fo as f64 * 4.0; // activations
        bytes += (fi * fo) as f64 * 4.0 * g.num_edge_types() as f64; // weights
    }
    bytes
}

/// LSTM padding of id-ordered vertex batches of `chunk` destinations: the
/// DGL/PyG degree-bucketing ignores gTask-style degree sorting, so every
/// batch pads to its longest sequence.
pub fn chunked_lstm_padding(g: &Graph, chunk: usize) -> f64 {
    let degs = g.in_degree();
    let mut weighted = 0.0f64;
    let mut total = 0.0f64;
    for c in degs.chunks(chunk.max(1)) {
        let max = c.iter().copied().max().unwrap_or(0) as f64;
        let sum: f64 = c.iter().map(|&d| d as f64).sum();
        if sum == 0.0 {
            continue;
        }
        let mean = sum / c.len() as f64;
        weighted += (max / mean) * sum;
        total += sum;
    }
    if total > 0.0 {
        weighted / total
    } else {
        1.0
    }
}

/// Forward compute time of one layer under the DGL strategy — the shared
/// per-device compute term of the multi-GPU estimates.
pub fn layer_compute_time(
    g: &Graph,
    model: ModelKind,
    fi: usize,
    fo: usize,
    dev: &DeviceSpec,
) -> f64 {
    if model == ModelKind::Rgcn {
        return dgl_rgcn_stream(g, fi, fo, dev).0;
    }
    let binding = Binding::from_graph(g);
    let dfg = model.layer_dfg(fi, fo);
    let part = OpPartition::dense_separate_rest_fused(&dfg);
    let ctx = KernelContext::tensor_centric();
    let ks = generate_kernels(&dfg, &binding, &part, &ctx);
    total_time(dev, &ks)
}

/// PyG's RGCN execution: per relation, a gather / dense-matmul / scatter
/// triple over that relation's edges. More kernel launches and less
/// coalescing than DGL's segmented GEMM, same `[E, F] + [E, F']`
/// materialization.
fn pyg_rgcn_stream(g: &Graph, fi: usize, fo: usize, dev: &DeviceSpec) -> (f64, f64) {
    let t = g.num_edge_types();
    let mut per_type = vec![0usize; t];
    for &ty in g.etype() {
        per_type[ty as usize] += 1;
    }
    let mut time = 0.0;
    for &et in &per_type {
        if et == 0 {
            continue;
        }
        let et = et as f64;
        let gather = KernelCost {
            flops: 0.0,
            bytes: et * fi as f64 * 4.0 * 2.0,
            parallel_tasks: et / 64.0,
            class: ComputeClass::Memory { coalesced: false },
        };
        let mm = KernelCost {
            flops: 2.0 * et * fi as f64 * fo as f64,
            bytes: (et * (fi + fo) as f64 + (fi * fo) as f64) * 4.0,
            parallel_tasks: et / 64.0,
            class: ComputeClass::DenseMatmul,
        };
        let scatter = KernelCost {
            flops: et * fo as f64,
            bytes: et * fo as f64 * 4.0 * 2.0,
            parallel_tasks: et / 64.0,
            class: ComputeClass::Memory { coalesced: false },
        };
        time += dev.kernel_time(&gather) + dev.kernel_time(&mm) + dev.kernel_time(&scatter);
    }
    let e = g.num_edges() as f64;
    (time, e * (fi + fo) as f64 * 4.0)
}

/// DGL's RGCN execution: gather, per-type segmented GEMMs (no per-edge
/// weight materialization), scatter-add — the "high-level fused" stream DGL
/// v1.0 runs for heterogeneous linear layers.
fn dgl_rgcn_stream(g: &Graph, fi: usize, fo: usize, dev: &DeviceSpec) -> (f64, f64) {
    let e = g.num_edges() as f64;
    let t = g.num_edge_types() as f64;
    let gather = KernelCost {
        flops: 0.0,
        bytes: e * fi as f64 * 4.0 * 2.0,
        parallel_tasks: e / 64.0,
        class: ComputeClass::Memory { coalesced: false },
    };
    let segmented_mm = KernelCost {
        flops: 2.0 * e * fi as f64 * fo as f64,
        bytes: (e * (fi + fo) as f64 + t * (fi * fo) as f64) * 4.0,
        parallel_tasks: e / 64.0,
        class: ComputeClass::DenseMatmul,
    };
    let scatter = KernelCost {
        flops: e * fo as f64,
        bytes: e * fo as f64 * 4.0 * 2.0,
        parallel_tasks: e / 64.0,
        class: ComputeClass::Memory { coalesced: false },
    };
    let time = dev.kernel_time(&gather)
        + dev.kernel_time(&segmented_mm)
        + dev.kernel_time(&scatter);
    // Materializes [E, fi] and [E, fo] (but never [E, fi, fo]).
    let bytes = e * (fi + fo) as f64 * 4.0;
    (time, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_graph::DatasetKind;

    fn arxiv() -> Graph {
        DatasetKind::Arxiv.spec().build()
    }

    #[test]
    fn tensor_centric_beats_graph_centric_on_complex_models() {
        // §2.2 / Figure 13(a,b): for MLP/attention models, tensor-centric
        // (PyG/DGL) is faster than vertex-centric fused (Seastar), which
        // has ~1% compute efficiency.
        let g = arxiv();
        let dev = DeviceSpec::a100_pcie();
        let dims = LayerDims::paper_single(128, 40);
        for model in [ModelKind::Rgcn, ModelKind::Gat] {
            let dgl = Baseline::Dgl.estimate(&g, model, &dims, &dev);
            let seastar = Baseline::SeastarG.estimate(&g, model, &dims, &dev);
            assert!(
                dgl.time_per_iter < seastar.time_per_iter,
                "{}: DGL {} vs Seastar {}",
                model.name(),
                dgl.time_per_iter,
                seastar.time_per_iter
            );
        }
    }

    #[test]
    fn graph_centric_competitive_on_simple_models() {
        // Figure 13(d,e): for addition-only models, graph-centric closes
        // the gap (data movement dominates).
        let g = arxiv();
        let dev = DeviceSpec::a100_pcie();
        let dims = LayerDims::paper_single(128, 40);
        let pyg = Baseline::PygT.estimate(&g, ModelKind::Gcn, &dims, &dev);
        let seastar = Baseline::SeastarG.estimate(&g, ModelKind::Gcn, &dims, &dev);
        // Within ~4× of each other rather than the order-of-magnitude gap
        // complex models show.
        let ratio = seastar.time_per_iter / pyg.time_per_iter;
        assert!(ratio < 4.0, "ratio {ratio}");
    }

    #[test]
    fn graph_centric_is_more_memory_efficient() {
        // §7.2: "the graph-centric approach is more memory-efficient, while
        // tensor-centric suffers more from OOM".
        let g = arxiv();
        let dev = DeviceSpec::a100_pcie();
        let dims = LayerDims::paper_single(128, 40);
        for model in [ModelKind::Rgcn, ModelKind::Gat] {
            let pyg = Baseline::PygT.estimate(&g, model, &dims, &dev);
            let seastar = Baseline::SeastarG.estimate(&g, model, &dims, &dev);
            assert!(pyg.memory_bytes > seastar.memory_bytes);
        }
    }

    #[test]
    fn pyg_rgcn_goes_oom_on_dense_graphs() {
        // PyG materializes per-edge weights [E, F, F'] — OOM on Products
        // and Reddit (the white cells of Figure 13a).
        let dev = DeviceSpec::a100_pcie();
        for kind in [DatasetKind::Products, DatasetKind::Reddit] {
            let spec = kind.spec();
            let g = spec.build();
            let dims = LayerDims::paper_single(spec.feature_dim, spec.num_classes);
            // Account for the full-size graph: scale transient linearly.
            let est = Baseline::PygT.estimate(&g, ModelKind::Rgcn, &dims, &dev);
            let scaled_mem = est.memory_bytes * spec.scale();
            assert!(
                scaled_mem > dev.mem_capacity,
                "{}: {scaled_mem}",
                kind.short_name()
            );
        }
        // ... but not on Arxiv (PyG runs RGCN on AR in the paper).
        let spec = DatasetKind::Arxiv.spec();
        let g = spec.build();
        let dims = LayerDims::paper_single(spec.feature_dim, spec.num_classes);
        let est = Baseline::PygT.estimate(&g, ModelKind::Rgcn, &dims, &dev);
        assert!(est.memory_bytes * spec.scale() < dev.mem_capacity);
    }

    #[test]
    fn columns_match_figure13() {
        assert_eq!(Baseline::columns_for(ModelKind::Rgcn).len(), 3);
        assert_eq!(Baseline::columns_for(ModelKind::SageLstm).len(), 2);
        assert_eq!(Baseline::columns_for(ModelKind::Gcn).len(), 5);
        assert_eq!(Baseline::Dgl.label(ModelKind::Rgcn), "DGL-T");
        assert_eq!(Baseline::Dgl.label(ModelKind::Gcn), "DGL-G");
    }

    #[test]
    fn layer_io_shapes() {
        let dims = LayerDims::paper_single(602, 41);
        assert_eq!(dims.layer_io(0), (602, 256));
        assert_eq!(dims.layer_io(1), (256, 256));
        assert_eq!(dims.layer_io(2), (256, 41));
    }
}
