//! Baseline GNN systems, re-implemented as partition *strategies* over the
//! shared simulator.
//!
//! The paper compares WiseGraph against PyG, DGL, GNNAdvisor, Seastar and
//! TC-GNN on a single GPU (Figure 13) and DGL, ROC, DGCL and an emulated P3
//! on multiple GPUs (Table 2). Those systems differ from WiseGraph — and
//! from each other — in *how they partition graph data and operations*, so
//! we reproduce each one's strategy and price every strategy with the same
//! device model (`wisegraph-sim`), exactly as the paper itself emulates P3
//! "by reproducing the hybrid parallelism as mentioned in the paper".
//!
//! - [`single`]: single-GPU executors — tensor-centric (PyG), tensor-centric
//!   with fused message kernels and segmented GEMMs (DGL), vertex-centric
//!   fused (Seastar), neighbor-grouped (GNNAdvisor), tensor-core tiled
//!   (TC-GNN);
//! - [`multi`]: multi-GPU executors — data parallel with all-to-all feature
//!   exchange (DGL/DistDGL), balanced-partition overlap (ROC),
//!   communication-scheduled (DGCL), and hybrid tensor/data parallelism
//!   (P3).

pub mod multi;
pub mod single;

pub use multi::{MultiGpuSystem, MultiStack};
pub use single::{Baseline, ExecutionEstimate, LayerDims};
