//! Multi-GPU baseline executors (Table 2, Figure 20).
//!
//! All systems partition vertex embeddings across devices (§5.4). They
//! differ in parallel strategy and communication pattern:
//!
//! - **DGL/DistDGL**: data parallel — each device owns a vertex range and
//!   all-to-alls the remote source embeddings it needs per layer;
//! - **ROC**: data parallel with a balanced, cut-minimizing partition and
//!   computation/communication overlap;
//! - **DGCL**: data parallel with topology-aware communication scheduling
//!   (lower comm cost, higher system overhead);
//! - **P3**: hybrid — tensor parallel for the input layer (communicates
//!   `[V, hidden]` activations instead of `[V, F]` features), data parallel
//!   afterwards. Static: it always makes that choice, which loses when
//!   `hidden` is large relative to the feature dim (Figure 20).

use crate::single::{layer_compute_time, LayerDims, TRAIN_FACTOR};
use wisegraph_graph::Graph;
use wisegraph_models::ModelKind;
use wisegraph_sim::{DeviceSpec, Fabric};

/// A multi-GPU execution environment: per-device model plus interconnect.
#[derive(Clone, Copy, Debug)]
pub struct MultiStack {
    /// The per-device model.
    pub device: DeviceSpec,
    /// The interconnect.
    pub fabric: Fabric,
}

impl MultiStack {
    /// The paper's testbed: 4× A100 over PCIe 4.0.
    pub fn paper_quad() -> Self {
        Self {
            device: DeviceSpec::a100_pcie(),
            fabric: Fabric::pcie4_quad(),
        }
    }
}

/// MGG's full-graph *inference* time (forward only): fine-grained
/// intra-kernel communication/computation pipelining hides most of the
/// communication, but its kernels stay vertex-centric (no data batching)
/// and it keeps DGL-style data-parallel volumes — the gap WiseGraph's
/// operation placement and batched kernels close (§7.2: 2.90× on PA).
pub fn mgg_inference_time(
    g: &Graph,
    model: ModelKind,
    dims: &LayerDims,
    stack: &MultiStack,
) -> f64 {
    let d = stack.fabric.num_devices as f64;
    let remote = max_remote_unique_src(g, stack.fabric.num_devices) as f64;
    let mut total = 0.0;
    for l in 0..dims.layers {
        let (fi, fo) = dims.layer_io(l);
        // Vertex-centric kernels: ~2× the library-kernel compute time.
        let comp = layer_compute_time(g, model, fi, fo, &stack.device) * 2.0 / d;
        let comm = stack.fabric.all_to_all(remote * fi as f64 * 4.0);
        // Intra-kernel pipelining: near-full overlap.
        total += comp.max(comm) + 0.05 * comp.min(comm);
    }
    total
}

/// Partitions vertices into `devices` contiguous ranges and returns, for
/// the bottleneck device, the number of *unique remote* source vertices its
/// in-edges reference — the payload of the data-parallel all-to-all.
pub fn max_remote_unique_src(g: &Graph, devices: usize) -> usize {
    if devices <= 1 {
        return 0;
    }
    let n = g.num_vertices();
    let chunk = n.div_ceil(devices);
    let dev_of = |v: u32| (v as usize / chunk).min(devices - 1);
    let mut per_dev: Vec<std::collections::HashSet<u32>> =
        vec![std::collections::HashSet::new(); devices];
    for e in 0..g.num_edges() {
        let (s, d) = (g.src()[e], g.dst()[e]);
        let dd = dev_of(d);
        if dev_of(s) != dd {
            per_dev[dd].insert(s);
        }
    }
    per_dev.into_iter().map(|s| s.len()).max().unwrap_or(0)
}

/// The multi-GPU baseline systems of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MultiGpuSystem {
    /// Data-parallel DGL/DistDGL.
    Dgl,
    /// ROC: balanced partition, comm/compute overlap (full-graph only).
    Roc,
    /// DGCL: communication-optimized library (full-graph only).
    Dgcl,
    /// Emulated P3: tensor parallel first layer, data parallel after
    /// (sampled-graph oriented).
    P3,
}

impl MultiGpuSystem {
    /// All systems in Table 2 column order.
    pub const ALL: [MultiGpuSystem; 4] = [
        MultiGpuSystem::Dgl,
        MultiGpuSystem::Roc,
        MultiGpuSystem::Dgcl,
        MultiGpuSystem::P3,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MultiGpuSystem::Dgl => "DGL",
            MultiGpuSystem::Roc => "ROC",
            MultiGpuSystem::Dgcl => "DGCL",
            MultiGpuSystem::P3 => "P3",
        }
    }

    /// Whether the system supports this training mode (Table 2's N/A
    /// cells): ROC and DGCL are full-graph systems; P3 targets sampled
    /// training.
    pub fn supports(self, sampled: bool) -> bool {
        match self {
            MultiGpuSystem::Dgl => true,
            MultiGpuSystem::Roc | MultiGpuSystem::Dgcl => !sampled,
            MultiGpuSystem::P3 => sampled,
        }
    }

    /// Per-iteration training time of `model` on `g` across the stack.
    pub fn iteration_time(
        self,
        g: &Graph,
        model: ModelKind,
        dims: &LayerDims,
        stack: &MultiStack,
    ) -> f64 {
        let d = stack.fabric.num_devices;
        let remote = max_remote_unique_src(g, d) as f64;
        let v = g.num_vertices() as f64;
        let mut total = 0.0;
        for l in 0..dims.layers {
            let (fi, fo) = dims.layer_io(l);
            let comp = layer_compute_time(g, model, fi, fo, &stack.device) / d as f64;
            let (comp, comm) = match self {
                MultiGpuSystem::Dgl => {
                    // Hash/range partition: moderate imbalance.
                    let comm = stack.fabric.all_to_all(remote * fi as f64 * 4.0);
                    (comp * 1.15, comm)
                }
                MultiGpuSystem::Roc => {
                    // Learned balanced partition cuts remote traffic and
                    // overlaps communication with computation.
                    let comm = stack.fabric.all_to_all(remote * 0.8 * fi as f64 * 4.0);
                    let overlapped = comp.max(comm) + 0.3 * comp.min(comm);
                    total += overlapped * TRAIN_FACTOR;
                    continue;
                }
                MultiGpuSystem::Dgcl => {
                    // Better comm schedule, heavier runtime machinery.
                    let comm = stack.fabric.all_to_all(remote * 0.85 * fi as f64 * 4.0);
                    (comp * 1.6, comm)
                }
                MultiGpuSystem::P3 => {
                    if l == 0 {
                        // Tensor parallel: features stay put; partial
                        // aggregates of the hidden activations are
                        // reduce-scattered.
                        let comm = stack.fabric.reduce_scatter(v * fo as f64 * 4.0);
                        (comp * 1.05, comm)
                    } else {
                        let comm = stack.fabric.all_to_all(remote * fi as f64 * 4.0);
                        (comp * 1.15, comm)
                    }
                }
            };
            total += (comp + comm) * TRAIN_FACTOR;
        }
        total
    }

    /// Forward-only (inference) time per iteration.
    pub fn inference_time(
        self,
        g: &Graph,
        model: ModelKind,
        dims: &LayerDims,
        stack: &MultiStack,
    ) -> f64 {
        self.iteration_time(g, model, dims, stack) / TRAIN_FACTOR
    }

    /// Time for the first GCN layer only — the Figure 20 microbenchmark.
    pub fn first_layer_time(
        self,
        g: &Graph,
        f_in: usize,
        hidden: usize,
        stack: &MultiStack,
    ) -> f64 {
        let d = stack.fabric.num_devices;
        let remote = max_remote_unique_src(g, d) as f64;
        let v = g.num_vertices() as f64;
        let comp =
            layer_compute_time(g, ModelKind::Gcn, f_in, hidden, &stack.device) / d as f64;
        let comm = match self {
            MultiGpuSystem::P3 => stack.fabric.reduce_scatter(v * hidden as f64 * 4.0),
            _ => stack.fabric.all_to_all(remote * f_in as f64 * 4.0),
        };
        comp + comm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wisegraph_graph::DatasetKind;

    fn papers_like() -> Graph {
        DatasetKind::Papers.spec().build()
    }

    #[test]
    fn remote_unique_src_bounds() {
        let g = papers_like();
        let r1 = max_remote_unique_src(&g, 1);
        let r4 = max_remote_unique_src(&g, 4);
        assert_eq!(r1, 0);
        assert!(r4 > 0);
        assert!(r4 <= g.num_vertices());
        // More devices → each chunk needs at least as many remote vertices
        // per chunk... but the per-device max payload is bounded by V.
        let r8 = max_remote_unique_src(&g, 8);
        assert!(r8 <= g.num_vertices());
    }

    #[test]
    fn applicability_matches_table2() {
        assert!(MultiGpuSystem::Dgl.supports(false));
        assert!(MultiGpuSystem::Dgl.supports(true));
        assert!(MultiGpuSystem::Roc.supports(false));
        assert!(!MultiGpuSystem::Roc.supports(true));
        assert!(!MultiGpuSystem::P3.supports(false));
        assert!(MultiGpuSystem::P3.supports(true));
    }

    #[test]
    fn roc_beats_dgl_on_full_graph() {
        // Table 2: ROC < DGL on PA and FS.
        let g = papers_like();
        let stack = MultiStack::paper_quad();
        let dims = LayerDims {
            f_in: 128,
            hidden: 32,
            classes: 172,
            layers: 3,
        };
        let dgl = MultiGpuSystem::Dgl.iteration_time(&g, ModelKind::Sage, &dims, &stack);
        let roc = MultiGpuSystem::Roc.iteration_time(&g, ModelKind::Sage, &dims, &stack);
        let dgcl = MultiGpuSystem::Dgcl.iteration_time(&g, ModelKind::Sage, &dims, &stack);
        assert!(roc < dgl, "ROC {roc} vs DGL {dgl}");
        assert!(dgcl > roc, "DGCL {dgcl} vs ROC {roc}");
    }

    #[test]
    fn figure20_crossover_between_dgl_and_p3() {
        // P3 communicates hidden-sized activations in layer 1; DGL
        // communicates feature-sized embeddings. Small hidden → P3 wins;
        // hidden ≥ features → DGL side catches up (the static-strategy
        // weakness §5.4 calls out).
        let g = DatasetKind::FriendSterSample.spec().build();
        let stack = MultiStack::paper_quad();
        let f_in = 384;
        let p3_small =
            MultiGpuSystem::P3.first_layer_time(&g, f_in, 32, &stack);
        let dgl_small =
            MultiGpuSystem::Dgl.first_layer_time(&g, f_in, 32, &stack);
        assert!(p3_small < dgl_small, "P3 {p3_small} vs DGL {dgl_small}");
        let p3_big = MultiGpuSystem::P3.first_layer_time(&g, f_in, 1024, &stack);
        let dgl_big = MultiGpuSystem::Dgl.first_layer_time(&g, f_in, 1024, &stack);
        assert!(
            p3_big > dgl_big * 0.8,
            "at hidden=1024 P3 loses its edge: P3 {p3_big} vs DGL {dgl_big}"
        );
    }

    #[test]
    fn communication_dominates_over_pcie() {
        // The multi-GPU premise of §5.4: link bandwidth is far below
        // compute throughput, so communication is the bottleneck over PCIe
        // and reducing its volume (operation placement) is what matters.
        let g = papers_like();
        let quad = MultiStack::paper_quad();
        let dims = LayerDims {
            f_in: 128,
            hidden: 32,
            classes: 172,
            layers: 3,
        };
        let remote = max_remote_unique_src(&g, 4) as f64;
        let comm0 = quad.fabric.all_to_all(remote * 128.0 * 4.0);
        let comp0 =
            layer_compute_time(&g, ModelKind::Gcn, 128, 32, &quad.device) / 4.0;
        assert!(
            comm0 > 0.3 * comp0,
            "communication must be a major cost: comm {comm0} vs comp {comp0}"
        );
        // With a 10× faster (NVLink-class) fabric, scaling out wins
        // against one device of the same spec.
        let fast = MultiStack {
            fabric: Fabric {
                link_bw: quad.fabric.link_bw * 10.0,
                ..quad.fabric
            },
            ..quad
        };
        let single = MultiStack {
            fabric: Fabric {
                num_devices: 1,
                ..quad.fabric
            },
            ..quad
        };
        let t1 = MultiGpuSystem::Dgl.iteration_time(&g, ModelKind::Gcn, &dims, &single);
        let t4 = MultiGpuSystem::Dgl.iteration_time(&g, ModelKind::Gcn, &dims, &fast);
        assert!(t4 < t1, "t4 {t4} vs t1 {t1}");
    }
}
