//! DFG analyses: indexing-attribute identification and workload accounting.

use crate::dim::Binding;
use crate::graph::{Dfg, NodeId};
use crate::op::OpKind;
use std::collections::BTreeSet;
use wisegraph_graph::AttrKind;

/// Identifies the *indexing edge attributes* of a model (paper §4.1):
/// attributes whose `EdgeAttr` streams drive indexing operations (or
/// structured aggregations) and therefore determine memory-access patterns.
pub fn indexing_attrs(dfg: &Dfg) -> BTreeSet<AttrKind> {
    let consumers = dfg.consumers();
    let mut out = BTreeSet::new();
    for (i, node) in dfg.nodes().iter().enumerate() {
        let OpKind::EdgeAttr(attr) = node.kind else {
            continue;
        };
        let used_for_indexing = consumers[i].iter().any(|&NodeId(c)| {
            matches!(
                dfg.node(NodeId(c)).kind,
                OpKind::Index
                    | OpKind::Index2D
                    | OpKind::IndexAdd { .. }
                    | OpKind::LstmAggregate { .. }
                    | OpKind::SegmentSoftmax
            )
        });
        if used_for_indexing {
            out.insert(attr);
        }
    }
    out
}

/// A workload summary: the three components of the paper's cost model
/// (§6.3): computation, memory volume, and parallelism.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Workload {
    /// Floating-point operations in neural ops.
    pub neural_flops: f64,
    /// Floating-point operations in indexing/reduction ops.
    pub indexing_flops: f64,
    /// Global-memory bytes moved by neural ops.
    pub neural_bytes: f64,
    /// Global-memory bytes moved by indexing ops.
    pub indexing_bytes: f64,
    /// Minimum of per-op parallel rows over heavy ops: a proxy for whether
    /// the plan can keep a device busy.
    pub min_parallel_rows: f64,
}

impl Workload {
    /// Total FLOPs.
    pub fn flops(&self) -> f64 {
        self.neural_flops + self.indexing_flops
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> f64 {
        self.neural_bytes + self.indexing_bytes
    }

    /// Arithmetic intensity (FLOP per byte); zero traffic yields zero.
    pub fn flop_per_byte(&self) -> f64 {
        let b = self.bytes();
        if b == 0.0 {
            0.0
        } else {
            self.flops() / b
        }
    }
}

/// Sums the workload of every live node of the DFG under a binding.
pub fn workload(dfg: &Dfg, binding: &Binding) -> Workload {
    let live = dfg.live_set();
    let mut w = Workload {
        min_parallel_rows: f64::INFINITY,
        ..Default::default()
    };
    let mut any_heavy = false;
    for (i, node) in dfg.nodes().iter().enumerate() {
        if !live[i] {
            continue;
        }
        let in_shapes: Vec<_> = node
            .inputs
            .iter()
            .map(|&p| dfg.node(p).shape.clone())
            .collect();
        let flops = node.kind.flops(&in_shapes, &node.shape, binding);
        let bytes = node.kind.mem_bytes(&in_shapes, &node.shape, binding);
        if node.kind.is_neural() {
            w.neural_flops += flops;
            w.neural_bytes += bytes;
        } else {
            w.indexing_flops += flops;
            w.indexing_bytes += bytes;
        }
        // Parallelism proxy: rows of the output of heavy ops.
        if matches!(
            node.kind,
            OpKind::Linear
                | OpKind::PerEdgeLinear
                | OpKind::PairwiseLinear
                | OpKind::LstmAggregate { .. }
        ) {
            let rows: f64 = node.shape[..node.shape.len().saturating_sub(1)]
                .iter()
                .map(|&d| binding.eval(d) as f64)
                .product();
            w.min_parallel_rows = w.min_parallel_rows.min(rows);
            any_heavy = true;
        }
    }
    if !any_heavy {
        w.min_parallel_rows = binding.edges as f64;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::Dim;
    use wisegraph_graph::Graph;

    fn paper_graph() -> Graph {
        Graph::new(
            5,
            2,
            vec![0, 1, 0, 1, 2, 2, 3, 4, 3, 4, 0],
            vec![0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 4],
            vec![0, 0, 0, 0, 1, 0, 1, 1, 1, 1, 0],
        )
    }

    fn rgcn_dfg() -> Dfg {
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(8)]);
        let w = d.input("W", vec![Dim::EdgeTypes, Dim::Lit(8), Dim::Lit(4)]);
        let src = d.edge_attr(AttrKind::SrcId);
        let ty = d.edge_attr(AttrKind::EdgeType);
        let dst = d.edge_attr(AttrKind::DstId);
        let hsrc = d.index(h, src);
        let wt = d.index(w, ty);
        let msg = d.per_edge_linear(hsrc, wt);
        let out = d.index_add(msg, dst, Dim::Vertices);
        d.mark_output(out);
        d
    }

    #[test]
    fn rgcn_indexing_attrs_match_figure5b() {
        let attrs = indexing_attrs(&rgcn_dfg());
        let expect: BTreeSet<AttrKind> =
            [AttrKind::SrcId, AttrKind::EdgeType, AttrKind::DstId]
                .into_iter()
                .collect();
        assert_eq!(attrs, expect);
    }

    #[test]
    fn unused_attr_is_not_reported() {
        let mut d = rgcn_dfg();
        // An attribute stream that feeds nothing.
        d.edge_attr(AttrKind::SrcVertexType);
        let attrs = indexing_attrs(&d);
        assert!(!attrs.contains(&AttrKind::SrcVertexType));
    }

    #[test]
    fn workload_accounts_neural_and_indexing() {
        let g = paper_graph();
        let b = Binding::from_graph(&g);
        let w = workload(&rgcn_dfg(), &b);
        // PerEdgeLinear: 2·E·8·4 = 704 FLOPs.
        assert_eq!(w.neural_flops, 2.0 * 11.0 * 8.0 * 4.0);
        assert!(w.indexing_bytes > 0.0, "index ops move bytes");
        // IndexAdd contributes indexing flops (the additions).
        assert!(w.indexing_flops > 0.0);
        assert!(w.flop_per_byte() > 0.0);
        assert_eq!(w.min_parallel_rows, 11.0);
    }

    #[test]
    fn dead_nodes_cost_nothing() {
        let g = paper_graph();
        let b = Binding::from_graph(&g);
        let mut d = rgcn_dfg();
        let base = workload(&d, &b);
        // Add an expensive dead node.
        let h2 = d.input("h2", vec![Dim::Vertices, Dim::Lit(128)]);
        let w2 = d.input("w2", vec![Dim::Lit(128), Dim::Lit(128)]);
        let _dead = d.linear(h2, w2);
        let after = workload(&d, &b);
        assert_eq!(base, after);
    }
}
