//! Symbolic tensor dimensions and their concrete bindings.
//!
//! Workload accounting must be evaluated both for the whole graph (plan
//! comparison) and per gTask (pattern analysis), so tensor shapes in the DFG
//! are symbolic: `[|V|, 128]`, `[uniq(src-id), F]`, etc. A [`Binding`]
//! supplies the concrete numbers for one scope.

use std::collections::HashMap;
use wisegraph_graph::{AttrKind, Graph};

/// One symbolic dimension of a tensor shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dim {
    /// Number of vertices in the scope.
    Vertices,
    /// Number of edges in the scope.
    Edges,
    /// Number of distinct values of an edge attribute in the scope
    /// (`uniq(attr)` in the paper's notation).
    Unique(AttrKind),
    /// Number of edge types of the graph (a model constant).
    EdgeTypes,
    /// A literal (model-defined) extent such as a feature dimension.
    Lit(usize),
}

/// A symbolic tensor shape.
pub type SymShape = Vec<Dim>;

/// Concrete values for every symbolic dimension in one scope.
#[derive(Clone, Debug, Default)]
pub struct Binding {
    /// `|V|` in this scope.
    pub vertices: usize,
    /// `|E|` in this scope.
    pub edges: usize,
    /// Number of edge types of the model/graph.
    pub edge_types: usize,
    /// `uniq(attr)` per attribute in this scope.
    pub unique: HashMap<AttrKind, usize>,
}

impl Binding {
    /// Builds the whole-graph binding: unique counts measured over all edges.
    pub fn from_graph(g: &Graph) -> Self {
        Self::from_edge_set(g, None)
    }

    /// Builds a binding for a subset of edges (a gTask scope). `edges = None`
    /// means the whole graph.
    pub fn from_edge_set(g: &Graph, edges: Option<&[usize]>) -> Self {
        // Attribute values are bounded (vertex ids < |V|, degrees ≤ |E|,
        // types < T), so large scopes count distinct values with a bitmap
        // (O(E) per attribute); small scopes (per-gTask bindings) sort,
        // avoiding a |E|-sized allocation per task.
        let count_unique = |kind: AttrKind| -> usize {
            match edges {
                Some(es) if es.len() < 4096 => {
                    let mut vals: Vec<u64> =
                        es.iter().map(|&e| g.edge_attr(kind, e)).collect();
                    vals.sort_unstable();
                    vals.dedup();
                    vals.len()
                }
                _ => {
                    let vals = |f: &mut dyn FnMut(u64)| match edges {
                        Some(es) => es.iter().for_each(|&e| f(g.edge_attr(kind, e))),
                        None => (0..g.num_edges()).for_each(|e| f(g.edge_attr(kind, e))),
                    };
                    let mut max = 0u64;
                    vals(&mut |v| max = max.max(v));
                    let mut seen = vec![false; max as usize + 1];
                    let mut count = 0usize;
                    vals(&mut |v| {
                        if !seen[v as usize] {
                            seen[v as usize] = true;
                            count += 1;
                        }
                    });
                    count
                }
            }
        };
        let num_edges = edges.map_or(g.num_edges(), |es| es.len());
        let mut unique = HashMap::new();
        for kind in AttrKind::ALL {
            unique.insert(kind, count_unique(kind));
        }
        // In a sub-scope the "vertices" that matter are the ones touched.
        let vertices = if edges.is_some() {
            let src_u = unique[&AttrKind::SrcId];
            let dst_u = unique[&AttrKind::DstId];
            src_u.max(dst_u)
        } else {
            g.num_vertices()
        };
        Binding {
            vertices,
            edges: num_edges,
            edge_types: g.num_edge_types(),
            unique,
        }
    }

    /// Evaluates a symbolic dimension.
    ///
    /// # Panics
    ///
    /// Panics if a `Unique` attribute was not recorded in this binding.
    pub fn eval(&self, dim: Dim) -> usize {
        match dim {
            Dim::Vertices => self.vertices,
            Dim::Edges => self.edges,
            Dim::EdgeTypes => self.edge_types,
            Dim::Lit(n) => n,
            Dim::Unique(a) => *self
                .unique
                .get(&a)
                .unwrap_or_else(|| panic!("no unique count recorded for {a}")),
        }
    }

    /// Evaluates a full shape to its element count.
    pub fn numel(&self, shape: &SymShape) -> usize {
        shape.iter().map(|&d| self.eval(d)).product()
    }

    /// Evaluates a full shape to concrete extents.
    pub fn concrete(&self, shape: &SymShape) -> Vec<usize> {
        shape.iter().map(|&d| self.eval(d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_graph() -> Graph {
        Graph::new(
            5,
            2,
            vec![0, 1, 0, 1, 2, 2, 3, 4, 3, 4, 0],
            vec![0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 4],
            vec![0, 0, 0, 0, 1, 0, 1, 1, 1, 1, 0],
        )
    }

    #[test]
    fn whole_graph_binding() {
        let g = paper_graph();
        let b = Binding::from_graph(&g);
        assert_eq!(b.vertices, 5);
        assert_eq!(b.edges, 11);
        assert_eq!(b.edge_types, 2);
        assert_eq!(b.eval(Dim::Unique(AttrKind::SrcId)), 5);
        assert_eq!(b.eval(Dim::Unique(AttrKind::DstId)), 5);
        assert_eq!(b.eval(Dim::Unique(AttrKind::EdgeType)), 2);
        assert_eq!(b.eval(Dim::Unique(AttrKind::EdgeId)), 11);
    }

    #[test]
    fn subset_binding_counts_unique_in_scope() {
        let g = paper_graph();
        // Edges into vertex 1: ids 2, 3, 4 with srcs {0, 1, 2}, types {a, b}.
        let b = Binding::from_edge_set(&g, Some(&[2, 3, 4]));
        assert_eq!(b.edges, 3);
        assert_eq!(b.eval(Dim::Unique(AttrKind::DstId)), 1);
        assert_eq!(b.eval(Dim::Unique(AttrKind::SrcId)), 3);
        assert_eq!(b.eval(Dim::Unique(AttrKind::EdgeType)), 2);
    }

    #[test]
    fn shape_evaluation() {
        let g = paper_graph();
        let b = Binding::from_graph(&g);
        let shape: SymShape = vec![Dim::Vertices, Dim::Lit(128)];
        assert_eq!(b.numel(&shape), 5 * 128);
        assert_eq!(b.concrete(&shape), vec![5, 128]);
        let w: SymShape = vec![Dim::EdgeTypes, Dim::Lit(4), Dim::Lit(8)];
        assert_eq!(b.numel(&w), 2 * 4 * 8);
    }
}
