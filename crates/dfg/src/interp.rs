//! Reference interpreter: executes a DFG on a concrete graph and tensors.
//!
//! Used to validate that DFG transformations (§5.2) are equivalence
//! preserving, and as the numeric ground truth for fused kernels.

use crate::dim::Binding;
use crate::graph::{Dfg, NodeId};
use crate::op::{OpKind, LEAKY_SLOPE};
use std::collections::HashMap;
use wisegraph_graph::Graph;
use wisegraph_tensor::{ops, Tensor};

/// A runtime value flowing through the DFG.
#[derive(Clone, Debug)]
pub enum Value {
    /// A dense tensor.
    Tensor(Tensor),
    /// An index stream (one integer per position).
    Index(Vec<u32>),
}

impl Value {
    fn tensor(&self) -> Result<&Tensor, String> {
        match self {
            Value::Tensor(t) => Ok(t),
            Value::Index(_) => Err("expected tensor, found index stream".into()),
        }
    }

    fn index(&self) -> Result<&[u32], String> {
        match self {
            Value::Index(v) => Ok(v),
            Value::Tensor(_) => Err("expected index stream, found tensor".into()),
        }
    }
}

/// Gathers along the first dimension of an arbitrary-rank tensor.
fn gather_first(t: &Tensor, idx: &[u32]) -> Result<Tensor, String> {
    let dims = t.dims();
    if dims.is_empty() {
        return Err("cannot gather from a scalar".into());
    }
    let row: usize = dims[1..].iter().product();
    let mut out = vec![0.0f32; idx.len() * row];
    for (i, &r) in idx.iter().enumerate() {
        let r = r as usize;
        if r >= dims[0] {
            return Err(format!("gather index {r} out of bounds for {}", dims[0]));
        }
        out[i * row..(i + 1) * row].copy_from_slice(&t.data()[r * row..(r + 1) * row]);
    }
    let mut shape = vec![idx.len()];
    shape.extend_from_slice(&dims[1..]);
    Ok(Tensor::from_vec(out, &shape))
}

/// Gathers along the first two dimensions.
fn gather_2d(t: &Tensor, idx1: &[u32], idx2: &[u32]) -> Result<Tensor, String> {
    let dims = t.dims();
    if dims.len() < 2 {
        return Err("Index2D needs rank >= 2 data".into());
    }
    if idx1.len() != idx2.len() {
        return Err("Index2D index streams differ in length".into());
    }
    let row: usize = dims[2..].iter().product();
    let mut out = vec![0.0f32; idx1.len() * row];
    for (i, (&a, &b)) in idx1.iter().zip(idx2.iter()).enumerate() {
        let (a, b) = (a as usize, b as usize);
        if a >= dims[0] || b >= dims[1] {
            return Err("Index2D index out of bounds".into());
        }
        let off = (a * dims[1] + b) * row;
        out[i * row..(i + 1) * row].copy_from_slice(&t.data()[off..off + row]);
    }
    let mut shape = vec![idx1.len()];
    shape.extend_from_slice(&dims[2..]);
    Ok(Tensor::from_vec(out, &shape))
}

/// Scatter-add along the first dimension.
fn scatter_add_first(rows: usize, src: &Tensor, idx: &[u32]) -> Result<Tensor, String> {
    let dims = src.dims();
    if dims.is_empty() || dims[0] != idx.len() {
        return Err("IndexAdd data rows must equal index length".into());
    }
    let row: usize = dims[1..].iter().product();
    let mut out = vec![0.0f32; rows * row];
    for (i, &r) in idx.iter().enumerate() {
        let r = r as usize;
        if r >= rows {
            return Err(format!("scatter index {r} out of bounds for {rows}"));
        }
        for j in 0..row {
            out[r * row + j] += src.data()[i * row + j];
        }
    }
    let mut shape = vec![rows];
    shape.extend_from_slice(&dims[1..]);
    Ok(Tensor::from_vec(out, &shape))
}

/// Computes the deduplicated sorted values of an attribute stream and the
/// map from each position to its unique index.
pub fn unique_and_map(stream: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let mut uniq: Vec<u32> = stream.to_vec();
    uniq.sort_unstable();
    uniq.dedup();
    let map = stream
        .iter()
        .map(|v| uniq.binary_search(v).expect("value present") as u32)
        .collect();
    (uniq, map)
}

/// Executes the DFG on a graph with named dense inputs, returning the values
/// of the declared outputs in order.
///
/// # Errors
///
/// Returns a message if an input is missing, shapes mismatch at runtime, or
/// an index is out of bounds.
pub fn execute(
    dfg: &Dfg,
    g: &Graph,
    inputs: &HashMap<String, Tensor>,
) -> Result<Vec<Tensor>, String> {
    let all: Vec<usize> = (0..g.num_edges()).collect();
    execute_on_edges(dfg, g, inputs, &all)
}

/// Executes the DFG over a *subset* of edges (one gTask's scope): edge
/// streams are restricted to `edges`, reductions still target the full
/// vertex set.
///
/// For DFGs whose every source-to-output path passes through an `IndexAdd`
/// and whose post-reduction operations are linear (GCN, RGCN), summing the
/// outputs of every task of a partition plan reproduces whole-graph
/// execution exactly — the correctness contract of gTask-based execution.
/// Non-decomposable operations (per-destination softmax, LSTM order) need
/// per-destination task scopes instead, which is exactly why those models'
/// plans restrict `dst-id` (§7.3).
///
/// # Errors
///
/// Returns a message if an input is missing, shapes mismatch at runtime,
/// an index is out of bounds, or `edges` references a nonexistent edge.
pub fn execute_on_edges(
    dfg: &Dfg,
    g: &Graph,
    inputs: &HashMap<String, Tensor>,
    edges: &[usize],
) -> Result<Vec<Tensor>, String> {
    if let Some(&bad) = edges.iter().find(|&&e| e >= g.num_edges()) {
        return Err(format!("edge {bad} out of bounds"));
    }
    let mut binding = Binding::from_graph(g);
    binding.edges = edges.len();
    let mut values: Vec<Option<Value>> = vec![None; dfg.len()];
    let live = dfg.live_set();
    for (i, node) in dfg.nodes().iter().enumerate() {
        if !live[i] {
            continue;
        }
        let get = |id: NodeId| -> Result<&Value, String> {
            values[id.0]
                .as_ref()
                .ok_or_else(|| format!("value for node {} not computed", id.0))
        };
        let value = match &node.kind {
            OpKind::Input { name, shape } => {
                let t = inputs
                    .get(name)
                    .ok_or_else(|| format!("missing input tensor '{name}'"))?;
                let expect = binding.concrete(shape);
                if t.dims() != expect.as_slice() {
                    return Err(format!(
                        "input '{name}' has shape {:?}, expected {:?}",
                        t.dims(),
                        expect
                    ));
                }
                Value::Tensor(t.clone())
            }
            OpKind::EdgeAttr(a) => Value::Index(
                edges.iter().map(|&ed| g.edge_attr(*a, ed) as u32).collect(),
            ),
            OpKind::UniqueValues(a) => {
                let stream: Vec<u32> = edges
                    .iter()
                    .map(|&ed| g.edge_attr(*a, ed) as u32)
                    .collect();
                Value::Index(unique_and_map(&stream).0)
            }
            OpKind::UniqueMap(a) => {
                let stream: Vec<u32> = edges
                    .iter()
                    .map(|&ed| g.edge_attr(*a, ed) as u32)
                    .collect();
                Value::Index(unique_and_map(&stream).1)
            }
            OpKind::Index => {
                let idx = get(node.inputs[1])?.index()?;
                match get(node.inputs[0])? {
                    Value::Tensor(t) => Value::Tensor(gather_first(t, idx)?),
                    // Indexing an index stream yields an index stream
                    // (e.g. src-id = src-id_unique[src-id_map]).
                    Value::Index(s) => Value::Index(
                        idx.iter()
                            .map(|&p| {
                                s.get(p as usize).copied().ok_or_else(|| {
                                    format!("index {p} out of bounds for stream")
                                })
                            })
                            .collect::<Result<_, String>>()?,
                    ),
                }
            }
            OpKind::Index2D => {
                let data = get(node.inputs[0])?.tensor()?;
                let i1 = get(node.inputs[1])?.index()?;
                let i2 = get(node.inputs[2])?.index()?;
                Value::Tensor(gather_2d(data, i1, i2)?)
            }
            OpKind::IndexAdd { out } => {
                let rows = binding.eval(*out);
                let idx = get(node.inputs[1])?.index()?;
                let data = get(node.inputs[0])?.tensor()?;
                Value::Tensor(scatter_add_first(rows, data, idx)?)
            }
            OpKind::Linear => {
                let x = get(node.inputs[0])?.tensor()?;
                let w = get(node.inputs[1])?.tensor()?;
                Value::Tensor(ops::matmul(x, w))
            }
            OpKind::PerEdgeLinear => {
                let x = get(node.inputs[0])?.tensor()?;
                let w = get(node.inputs[1])?.tensor()?;
                let (n, f) = (x.dims()[0], x.dims()[1]);
                let fo = w.dims()[2];
                if w.dims()[0] != n || w.dims()[1] != f {
                    return Err("PerEdgeLinear runtime shape mismatch".into());
                }
                let mut out = vec![0.0f32; n * fo];
                for i in 0..n {
                    for kk in 0..f {
                        let xv = x.data()[i * f + kk];
                        if xv == 0.0 {
                            continue;
                        }
                        let wrow = &w.data()[(i * f + kk) * fo..(i * f + kk + 1) * fo];
                        for (o, &wv) in out[i * fo..(i + 1) * fo].iter_mut().zip(wrow) {
                            *o += xv * wv;
                        }
                    }
                }
                Value::Tensor(Tensor::from_vec(out, &[n, fo]))
            }
            OpKind::PairwiseLinear => {
                let x = get(node.inputs[0])?.tensor()?;
                let w = get(node.inputs[1])?.tensor()?;
                let (u, f) = (x.dims()[0], x.dims()[1]);
                let (t, fo) = (w.dims()[0], w.dims()[2]);
                if w.dims()[1] != f {
                    return Err("PairwiseLinear runtime shape mismatch".into());
                }
                let mut out = vec![0.0f32; u * t * fo];
                for a in 0..u {
                    for b in 0..t {
                        for kk in 0..f {
                            let xv = x.data()[a * f + kk];
                            if xv == 0.0 {
                                continue;
                            }
                            let wrow = &w.data()[(b * f + kk) * fo..(b * f + kk + 1) * fo];
                            let orow = &mut out[(a * t + b) * fo..(a * t + b + 1) * fo];
                            for (o, &wv) in orow.iter_mut().zip(wrow) {
                                *o += xv * wv;
                            }
                        }
                    }
                }
                Value::Tensor(Tensor::from_vec(out, &[u, t, fo]))
            }
            OpKind::LstmAggregate { hidden } => {
                let x = get(node.inputs[0])?.tensor()?;
                let dst = get(node.inputs[1])?.index()?;
                let wx = get(node.inputs[2])?.tensor()?;
                let wh = get(node.inputs[3])?.tensor()?;
                let bias = get(node.inputs[4])?.tensor()?;
                Value::Tensor(lstm_aggregate(
                    x,
                    dst,
                    wx,
                    wh,
                    bias,
                    *hidden,
                    binding.vertices,
                )?)
            }
            OpKind::Add => {
                let a = get(node.inputs[0])?.tensor()?;
                let b = get(node.inputs[1])?.tensor()?;
                Value::Tensor(ops::add(a, b))
            }
            OpKind::Mul => {
                let a = get(node.inputs[0])?.tensor()?;
                let b = get(node.inputs[1])?.tensor()?;
                Value::Tensor(ops::mul(a, b))
            }
            OpKind::Relu => Value::Tensor(ops::relu(get(node.inputs[0])?.tensor()?)),
            OpKind::LeakyRelu => Value::Tensor(ops::leaky_relu(
                get(node.inputs[0])?.tensor()?,
                LEAKY_SLOPE,
            )),
            OpKind::ScaleByDegreeInv => {
                let x = get(node.inputs[0])?.tensor()?;
                let scales: Vec<f32> = g
                    .in_degree()
                    .iter()
                    .map(|&d| 1.0 / (d.max(1) as f32))
                    .collect();
                if x.dims()[0] != scales.len() {
                    return Err("ScaleByDegreeInv rows must equal |V|".into());
                }
                Value::Tensor(ops::scale_rows(
                    x,
                    &Tensor::from_vec(scales, &[g.num_vertices()]),
                ))
            }
            OpKind::SegmentSoftmax => {
                let s = get(node.inputs[0])?.tensor()?;
                let seg = get(node.inputs[1])?.index()?;
                Value::Tensor(ops::segment_softmax(s, seg, g.num_vertices()))
            }
            OpKind::ScaleRowsByScalar => {
                let x = get(node.inputs[0])?.tensor()?;
                let s = get(node.inputs[1])?.tensor()?;
                Value::Tensor(ops::scale_rows(x, s))
            }
            OpKind::ConcatCols => {
                let a = get(node.inputs[0])?.tensor()?;
                let b = get(node.inputs[1])?.tensor()?;
                Value::Tensor(ops::concat_cols(a, b))
            }
            OpKind::Transpose => {
                let a = get(node.inputs[0])?.tensor()?;
                let (r, c) = (a.dims()[0], a.dims()[1]);
                let mut data = vec![0.0f32; r * c];
                for i in 0..r {
                    for j in 0..c {
                        data[j * r + i] = a.data()[i * c + j];
                    }
                }
                Value::Tensor(Tensor::from_vec(data, &[c, r]))
            }
            OpKind::SqueezeCol => {
                let a = get(node.inputs[0])?.tensor()?;
                Value::Tensor(a.reshape(&[a.dims()[0]]))
            }
            OpKind::UnsqueezeCol => {
                let a = get(node.inputs[0])?.tensor()?;
                Value::Tensor(a.reshape(&[a.dims()[0], 1]))
            }
        };
        values[i] = Some(value);
    }
    dfg.outputs()
        .iter()
        .map(|&o| {
            values[o.0]
                .as_ref()
                .ok_or_else(|| "output not computed".to_string())
                .and_then(|v| v.tensor().cloned())
        })
        .collect()
}

/// Runs an LSTM over each destination vertex's in-edge messages (in edge
/// order) and returns the final hidden state per vertex.
#[allow(clippy::too_many_arguments)]
fn lstm_aggregate(
    x: &Tensor,
    dst: &[u32],
    wx: &Tensor,
    wh: &Tensor,
    bias: &Tensor,
    hidden: usize,
    num_vertices: usize,
) -> Result<Tensor, String> {
    let f = x.dims()[1];
    if wx.dims() != [f, 4 * hidden] {
        return Err("LstmAggregate wx must be [F, 4H]".into());
    }
    if wh.dims() != [hidden, 4 * hidden] {
        return Err("LstmAggregate wh must be [H, 4H]".into());
    }
    if bias.dims() != [4 * hidden] {
        return Err("LstmAggregate bias must be [4H]".into());
    }
    let mut h = vec![0.0f32; num_vertices * hidden];
    let mut c = vec![0.0f32; num_vertices * hidden];
    let sigmoid = |v: f32| 1.0 / (1.0 + (-v).exp());
    for (e, &d) in dst.iter().enumerate() {
        let d = d as usize;
        if d >= num_vertices {
            return Err("LstmAggregate dst out of bounds".into());
        }
        // gates = x_e @ wx + h_d @ wh + b, laid out [i | f | g | o].
        let mut gates = bias.data().to_vec();
        let xe = &x.data()[e * f..(e + 1) * f];
        for (k, &xv) in xe.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            let wrow = &wx.data()[k * 4 * hidden..(k + 1) * 4 * hidden];
            for (gv, &wv) in gates.iter_mut().zip(wrow) {
                *gv += xv * wv;
            }
        }
        let hd = &h[d * hidden..(d + 1) * hidden];
        let hd_copy: Vec<f32> = hd.to_vec();
        for (k, &hv) in hd_copy.iter().enumerate() {
            if hv == 0.0 {
                continue;
            }
            let wrow = &wh.data()[k * 4 * hidden..(k + 1) * 4 * hidden];
            for (gv, &wv) in gates.iter_mut().zip(wrow) {
                *gv += hv * wv;
            }
        }
        for j in 0..hidden {
            let i_g = sigmoid(gates[j]);
            let f_g = sigmoid(gates[hidden + j]);
            let g_g = gates[2 * hidden + j].tanh();
            let o_g = sigmoid(gates[3 * hidden + j]);
            let cv = f_g * c[d * hidden + j] + i_g * g_g;
            c[d * hidden + j] = cv;
            h[d * hidden + j] = o_g * cv.tanh();
        }
    }
    Ok(Tensor::from_vec(h, &[num_vertices, hidden]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::Dim;
    use wisegraph_graph::AttrKind;

    fn paper_graph() -> Graph {
        Graph::new(
            5,
            2,
            vec![0, 1, 0, 1, 2, 2, 3, 4, 3, 4, 0],
            vec![0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 4],
            vec![0, 0, 0, 0, 1, 0, 1, 1, 1, 1, 0],
        )
    }

    fn rand_tensor(dims: &[usize], seed: u64) -> Tensor {
        // Simple deterministic pseudo-random fill.
        let n: usize = dims.iter().product();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let data = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / u32::MAX as f32) - 0.5
            })
            .collect();
        Tensor::from_vec(data, dims)
    }

    #[test]
    fn rgcn_dfg_matches_manual_computation() {
        let g = paper_graph();
        let (f_in, f_out) = (3, 2);
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(f_in)]);
        let w = d.input(
            "W",
            vec![Dim::EdgeTypes, Dim::Lit(f_in), Dim::Lit(f_out)],
        );
        let src = d.edge_attr(AttrKind::SrcId);
        let ty = d.edge_attr(AttrKind::EdgeType);
        let dst = d.edge_attr(AttrKind::DstId);
        let hsrc = d.index(h, src);
        let wt = d.index(w, ty);
        let msg = d.per_edge_linear(hsrc, wt);
        let out = d.index_add(msg, dst, Dim::Vertices);
        d.mark_output(out);

        let ht = rand_tensor(&[5, f_in], 1);
        let wt_t = rand_tensor(&[2, f_in, f_out], 2);
        let mut inputs = HashMap::new();
        inputs.insert("h".to_string(), ht.clone());
        inputs.insert("W".to_string(), wt_t.clone());
        let got = &execute(&d, &g, &inputs).unwrap()[0];

        // Manual: for each edge, out[dst] += h[src] @ W[type].
        let mut expect = vec![0.0f32; 5 * f_out];
        for e in 0..g.num_edges() {
            let (s, dd, t) = (
                g.src()[e] as usize,
                g.dst()[e] as usize,
                g.etype()[e] as usize,
            );
            for o in 0..f_out {
                let mut acc = 0.0;
                for k in 0..f_in {
                    acc += ht.data()[s * f_in + k]
                        * wt_t.data()[(t * f_in + k) * f_out + o];
                }
                expect[dd * f_out + o] += acc;
            }
        }
        let expect = Tensor::from_vec(expect, &[5, f_out]);
        assert!(got.allclose(&expect, 1e-4), "diff {}", got.max_abs_diff(&expect));
    }

    #[test]
    fn unique_and_map_reconstructs_stream() {
        let stream = vec![5u32, 2, 5, 9, 2, 2];
        let (uniq, map) = unique_and_map(&stream);
        assert_eq!(uniq, vec![2, 5, 9]);
        for (i, &v) in stream.iter().enumerate() {
            assert_eq!(uniq[map[i] as usize], v);
        }
    }

    #[test]
    fn gcn_style_dfg_runs() {
        let g = paper_graph();
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(4)]);
        let w = d.input("w", vec![Dim::Lit(4), Dim::Lit(3)]);
        let src = d.edge_attr(AttrKind::SrcId);
        let dst = d.edge_attr(AttrKind::DstId);
        let hsrc = d.index(h, src);
        let agg = d.index_add(hsrc, dst, Dim::Vertices);
        let norm = d.scale_by_degree_inv(agg);
        let out = d.linear(norm, w);
        let act = d.relu(out);
        d.mark_output(act);

        let mut inputs = HashMap::new();
        inputs.insert("h".into(), rand_tensor(&[5, 4], 3));
        inputs.insert("w".into(), rand_tensor(&[4, 3], 4));
        let out = &execute(&d, &g, &inputs).unwrap()[0];
        assert_eq!(out.dims(), &[5, 3]);
        assert!(out.data().iter().all(|&v| v >= 0.0), "relu applied");
        assert!(out.all_finite());
    }

    #[test]
    fn missing_input_is_reported() {
        let g = paper_graph();
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(4)]);
        d.mark_output(h);
        let err = execute(&d, &g, &HashMap::new()).unwrap_err();
        assert!(err.contains("missing input"), "{err}");
    }

    #[test]
    fn wrong_input_shape_is_reported() {
        let g = paper_graph();
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(4)]);
        d.mark_output(h);
        let mut inputs = HashMap::new();
        inputs.insert("h".into(), Tensor::zeros(&[5, 3]));
        let err = execute(&d, &g, &inputs).unwrap_err();
        assert!(err.contains("expected"), "{err}");
    }

    #[test]
    fn lstm_aggregate_is_order_dependent_but_finite() {
        let g = paper_graph();
        let (f, hdim) = (3, 4);
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(f)]);
        let wx = d.input("wx", vec![Dim::Lit(f), Dim::Lit(4 * hdim)]);
        let wh = d.input("wh", vec![Dim::Lit(hdim), Dim::Lit(4 * hdim)]);
        let b = d.input("b", vec![Dim::Lit(4 * hdim)]);
        let src = d.edge_attr(AttrKind::SrcId);
        let dst = d.edge_attr(AttrKind::DstId);
        let hsrc = d.index(h, src);
        let agg = d.lstm_aggregate(hsrc, dst, wx, wh, b, hdim);
        d.mark_output(agg);

        let mut inputs = HashMap::new();
        inputs.insert("h".into(), rand_tensor(&[5, f], 5));
        inputs.insert("wx".into(), rand_tensor(&[f, 4 * hdim], 6));
        inputs.insert("wh".into(), rand_tensor(&[hdim, 4 * hdim], 7));
        inputs.insert("b".into(), rand_tensor(&[4 * hdim], 8));
        let out = &execute(&d, &g, &inputs).unwrap()[0];
        assert_eq!(out.dims(), &[5, hdim]);
        assert!(out.all_finite());
        // Every vertex has in-edges in the paper graph, so no row is zero.
        for v in 0..5 {
            assert!(out.row(v).iter().any(|&x| x != 0.0), "vertex {v}");
        }
    }
}
