//! Generic DFG passes: common-subexpression elimination, dead-node
//! pruning, and Graphviz export.
//!
//! The builder API makes it easy to emit duplicate stream/index nodes
//! (every layer builder calls `edge_attr(SrcId)` afresh); CSE canonicalizes
//! them so kernel generation sees each load once. Transformation rewrites
//! leave dead originals behind; pruning drops them. `to_dot` renders a DFG
//! for documentation and debugging.

use crate::graph::{Dfg, NodeId};
use crate::op::OpKind;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Structural key of a node: kind plus (canonicalized) inputs.
fn node_key(kind: &OpKind, inputs: &[NodeId]) -> String {
    format!("{kind:?}|{inputs:?}")
}

/// Common-subexpression elimination: merges structurally identical nodes
/// (same operation, same canonical inputs). Pure by construction — every
/// operation in the IR is deterministic.
pub fn cse(dfg: &Dfg) -> Dfg {
    let mut sp = wisegraph_obs::span!("dfg.cse", nodes = dfg.len());
    let mut out = Dfg::new();
    let mut canon: Vec<NodeId> = Vec::with_capacity(dfg.len());
    let mut seen: HashMap<String, NodeId> = HashMap::new();
    for node in dfg.nodes() {
        let inputs: Vec<NodeId> = node.inputs.iter().map(|p| canon[p.0]).collect();
        let key = node_key(&node.kind, &inputs);
        let id = match seen.get(&key) {
            Some(&existing) => existing,
            None => {
                let id = out.add_node(node.kind.clone(), inputs);
                seen.insert(key, id);
                id
            }
        };
        canon.push(id);
    }
    for &o in dfg.outputs() {
        out.mark_output(canon[o.0]);
    }
    sp.arg("nodes_after", out.len());
    out
}

/// Dead-node elimination: rebuilds the DFG with only output-reachable
/// nodes.
pub fn prune_dead(dfg: &Dfg) -> Dfg {
    let mut sp = wisegraph_obs::span!("dfg.prune_dead", nodes = dfg.len());
    let live = dfg.live_set();
    let mut out = Dfg::new();
    let mut remap: Vec<Option<NodeId>> = vec![None; dfg.len()];
    for (i, node) in dfg.nodes().iter().enumerate() {
        if !live[i] {
            continue;
        }
        let inputs: Vec<NodeId> = node
            .inputs
            .iter()
            .map(|p| remap[p.0].expect("live node's input is live"))
            .collect();
        remap[i] = Some(out.add_node(node.kind.clone(), inputs));
    }
    for &o in dfg.outputs() {
        out.mark_output(remap[o.0].expect("output is live"));
    }
    sp.arg("nodes_after", out.len());
    out
}

/// Renders the DFG in Graphviz dot format. Indexing operations are drawn
/// as boxes, neural operations as ellipses, sources as plain text — the
/// visual language of the paper's Figure 2(c).
pub fn to_dot(dfg: &Dfg, title: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{title}\" {{");
    let _ = writeln!(s, "  rankdir=TB;");
    let live = dfg.live_set();
    for (i, node) in dfg.nodes().iter().enumerate() {
        let (label, shape) = match &node.kind {
            OpKind::Input { name, .. } => (name.clone(), "plaintext"),
            OpKind::EdgeAttr(a) => (format!("{a}"), "plaintext"),
            OpKind::UniqueValues(a) => (format!("{a}_unique"), "plaintext"),
            OpKind::UniqueMap(a) => (format!("{a}_map"), "plaintext"),
            k if k.is_indexing() => (format!("{k:?}"), "box"),
            k => (format!("{k:?}"), "ellipse"),
        };
        let style = if live[i] { "" } else { ", style=dotted" };
        let _ = writeln!(s, "  n{i} [label=\"{label}\", shape={shape}{style}];");
        for &NodeId(p) in &node.inputs {
            let _ = writeln!(s, "  n{p} -> n{i};");
        }
    }
    for &NodeId(o) in dfg.outputs() {
        let _ = writeln!(s, "  n{o} [peripheries=2];");
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::Dim;
    use crate::interp::execute;
    use std::collections::HashMap as Map;
    use wisegraph_graph::generate::{rmat, RmatParams};
    use wisegraph_graph::AttrKind;
    use wisegraph_tensor::{init, Tensor};

    /// A DFG with deliberate duplication: two identical gathers.
    fn duplicated_dfg() -> Dfg {
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(4)]);
        let src1 = d.edge_attr(AttrKind::SrcId);
        let src2 = d.edge_attr(AttrKind::SrcId);
        let dst = d.edge_attr(AttrKind::DstId);
        let g1 = d.index(h, src1);
        let g2 = d.index(h, src2);
        let sum = d.add(g1, g2);
        let out = d.index_add(sum, dst, Dim::Vertices);
        d.mark_output(out);
        d
    }

    #[test]
    fn cse_merges_duplicate_streams_and_gathers() {
        let d = duplicated_dfg();
        let c = cse(&d);
        assert!(c.len() < d.len(), "{} vs {}", c.len(), d.len());
        // One EdgeAttr(SrcId), one Index remain.
        let count = |d: &Dfg, pred: &dyn Fn(&OpKind) -> bool| {
            d.nodes().iter().filter(|n| pred(&n.kind)).count()
        };
        assert_eq!(
            count(&c, &|k| matches!(k, OpKind::EdgeAttr(AttrKind::SrcId))),
            1
        );
        assert_eq!(count(&c, &|k| matches!(k, OpKind::Index)), 1);
    }

    #[test]
    fn cse_preserves_semantics() {
        let g = rmat(&RmatParams::standard(30, 200, 71));
        let d = duplicated_dfg();
        let c = cse(&d);
        let mut inputs: Map<String, Tensor> = Map::new();
        inputs.insert("h".into(), init::uniform_tensor(&[30, 4], -1.0, 1.0, 3));
        let a = &execute(&d, &g, &inputs).unwrap()[0];
        let b = &execute(&c, &g, &inputs).unwrap()[0];
        assert!(a.allclose(b, 1e-6));
    }

    #[test]
    fn prune_drops_dead_nodes_only() {
        let mut d = duplicated_dfg();
        // Dead expensive branch.
        let h2 = d.input("h2", vec![Dim::Vertices, Dim::Lit(64)]);
        let w2 = d.input("w2", vec![Dim::Lit(64), Dim::Lit(64)]);
        let _dead = d.linear(h2, w2);
        let before = d.len();
        let p = prune_dead(&d);
        assert!(p.len() < before);
        let g = rmat(&RmatParams::standard(30, 200, 73));
        let mut inputs: Map<String, Tensor> = Map::new();
        inputs.insert("h".into(), init::uniform_tensor(&[30, 4], -1.0, 1.0, 5));
        let mut inputs_full = inputs.clone();
        inputs_full.insert("h2".into(), Tensor::zeros(&[30, 64]));
        inputs_full.insert("w2".into(), Tensor::zeros(&[64, 64]));
        let a = &execute(&d, &g, &inputs_full).unwrap()[0];
        // The pruned DFG no longer needs the dead inputs at all.
        let b = &execute(&p, &g, &inputs).unwrap()[0];
        assert!(a.allclose(b, 1e-6));
    }

    #[test]
    fn dot_export_contains_every_live_node() {
        let d = duplicated_dfg();
        let dot = to_dot(&d, "test");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("src-id"));
        assert!(dot.contains("shape=box"), "indexing ops are boxes");
        assert!(dot.contains("peripheries=2"), "outputs are marked");
        assert!(dot.trim_end().ends_with('}'));
    }
}
