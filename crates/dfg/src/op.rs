//! The operation vocabulary of the DFG.
//!
//! Operations split into *indexing operations* (move data along graph
//! structure: `Index`, `Index2D`, `IndexAdd`) and *neural operations*
//! (dense computation: `Linear`, `PerEdgeLinear`, `LstmAggregate`, …) —
//! paper §2.1. Each op knows its shape inference rule and its FLOP /
//! memory-traffic cost, which the cost model (§6.3) aggregates.

use crate::dim::{Binding, Dim, SymShape};
use wisegraph_graph::AttrKind;

/// Negative slope used by `LeakyRelu` (GAT's standard value).
pub const LEAKY_SLOPE: f32 = 0.2;

/// A DFG operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// A dense input tensor (vertex embeddings, weights, biases).
    Input {
        /// Human-readable name ("h", "W", …).
        name: String,
        /// Symbolic shape.
        shape: SymShape,
    },
    /// An edge-attribute vector (one value per edge): the index streams that
    /// drive indexing operations.
    EdgeAttr(AttrKind),
    /// The deduplicated values of an edge attribute (`src-id_unique`),
    /// introduced by the unique-value-extraction transformation (§5.2).
    UniqueValues(AttrKind),
    /// The map from each edge to its position in the unique list
    /// (`src-id_map`), paired with [`OpKind::UniqueValues`].
    UniqueMap(AttrKind),
    /// Gather along the first dimension: `out[i] = data[idx[i]]`.
    Index,
    /// Gather along the first two dimensions:
    /// `out[i] = data[idx1[i], idx2[i]]`.
    Index2D,
    /// Scatter-add along the first dimension into `out` rows:
    /// `out[idx[i]] += data[i]`.
    IndexAdd {
        /// Extent of the output's first dimension.
        out: Dim,
    },
    /// Dense matrix product `x @ W` with a shared weight.
    Linear,
    /// Row-wise vector–matrix product with a *per-row* weight:
    /// `out[i] = x[i] @ w[i]` (RGCN's edge-wise MLP before transformation).
    PerEdgeLinear,
    /// All-pairs product `out[u, t] = x[u] @ w[t]`, produced by indexing
    /// swapping with Index-2D merging: `A[B] ⊗ C[D] = (A ⊗ C)[B, D]`.
    PairwiseLinear,
    /// LSTM sequence aggregation of in-neighbor messages per destination
    /// vertex (SAGE-LSTM). Inputs: `(x[E,F], dst[E], wx[F,4H], wh[H,4H],
    /// b[4H])`; output `[V, H]`.
    LstmAggregate {
        /// LSTM hidden width `H`.
        hidden: usize,
    },
    /// Element-wise addition of two same-shaped tensors.
    Add,
    /// Element-wise multiplication of two same-shaped tensors.
    Mul,
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with slope [`LEAKY_SLOPE`].
    LeakyRelu,
    /// Divides each row `v` of a `[V, F]` tensor by `max(1, in-degree(v))`
    /// (mean aggregation / GCN normalization).
    ScaleByDegreeInv,
    /// Softmax over edges grouped by a segment id stream (GAT attention
    /// normalization). Inputs: `(scores[E], seg[E])`.
    SegmentSoftmax,
    /// Scales row `i` of `x` by scalar `s[i]`. Inputs: `(x[N,F], s[N])`.
    ScaleRowsByScalar,
    /// Concatenates two `[N, ·]` tensors along the column dimension.
    ConcatCols,
    /// Transposes a rank-2 tensor.
    Transpose,
    /// Drops a trailing singleton column: `[N, 1]` → `[N]`.
    SqueezeCol,
    /// Adds a trailing singleton column: `[N]` → `[N, 1]`.
    UnsqueezeCol,
}

impl OpKind {
    /// Returns `true` for data-movement (indexing) operations.
    pub fn is_indexing(&self) -> bool {
        matches!(
            self,
            OpKind::EdgeAttr(_)
                | OpKind::UniqueValues(_)
                | OpKind::UniqueMap(_)
                | OpKind::Index
                | OpKind::Index2D
                | OpKind::IndexAdd { .. }
        )
    }

    /// Returns `true` for dense neural operations.
    pub fn is_neural(&self) -> bool {
        matches!(
            self,
            OpKind::Linear
                | OpKind::PerEdgeLinear
                | OpKind::PairwiseLinear
                | OpKind::LstmAggregate { .. }
                | OpKind::Add
                | OpKind::Mul
                | OpKind::Relu
                | OpKind::LeakyRelu
                | OpKind::ScaleByDegreeInv
                | OpKind::SegmentSoftmax
                | OpKind::ScaleRowsByScalar
                | OpKind::ConcatCols
                | OpKind::SqueezeCol
                | OpKind::UnsqueezeCol
                | OpKind::Transpose
        )
    }

    /// Returns `true` if this op produces an index stream rather than a
    /// dense tensor.
    pub fn is_index_stream(&self) -> bool {
        matches!(
            self,
            OpKind::EdgeAttr(_) | OpKind::UniqueValues(_) | OpKind::UniqueMap(_)
        )
    }

    /// Infers the output shape from input shapes.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch if the inputs are not valid for
    /// this operation.
    pub fn output_shape(&self, inputs: &[SymShape]) -> Result<SymShape, String> {
        let need = |n: usize| -> Result<(), String> {
            if inputs.len() == n {
                Ok(())
            } else {
                Err(format!(
                    "{self:?} expects {n} inputs, got {}",
                    inputs.len()
                ))
            }
        };
        match self {
            OpKind::Input { shape, .. } => {
                need(0)?;
                Ok(shape.clone())
            }
            OpKind::EdgeAttr(_) | OpKind::UniqueMap(_) => {
                need(0)?;
                Ok(vec![Dim::Edges])
            }
            OpKind::UniqueValues(a) => {
                need(0)?;
                Ok(vec![Dim::Unique(*a)])
            }
            OpKind::Index => {
                need(2)?;
                let data = &inputs[0];
                let idx = &inputs[1];
                if data.is_empty() {
                    return Err("Index data must have rank >= 1".into());
                }
                if idx.len() != 1 {
                    return Err("Index idx must be rank-1".into());
                }
                let mut out = vec![idx[0]];
                out.extend_from_slice(&data[1..]);
                Ok(out)
            }
            OpKind::Index2D => {
                need(3)?;
                let data = &inputs[0];
                if data.len() < 2 {
                    return Err("Index2D data must have rank >= 2".into());
                }
                if inputs[1].len() != 1 || inputs[2].len() != 1 || inputs[1][0] != inputs[2][0] {
                    return Err("Index2D index streams must be rank-1 and same length".into());
                }
                let mut out = vec![inputs[1][0]];
                out.extend_from_slice(&data[2..]);
                Ok(out)
            }
            OpKind::IndexAdd { out } => {
                need(2)?;
                let data = &inputs[0];
                if data.is_empty() {
                    return Err("IndexAdd data must have rank >= 1".into());
                }
                if inputs[1].len() != 1 || inputs[1][0] != data[0] {
                    return Err("IndexAdd idx must be rank-1 matching data rows".into());
                }
                let mut shape = vec![*out];
                shape.extend_from_slice(&data[1..]);
                Ok(shape)
            }
            OpKind::Linear => {
                need(2)?;
                let (x, w) = (&inputs[0], &inputs[1]);
                if x.len() != 2 || w.len() != 2 || x[1] != w[0] {
                    return Err(format!("Linear shape mismatch: {x:?} @ {w:?}"));
                }
                Ok(vec![x[0], w[1]])
            }
            OpKind::PerEdgeLinear => {
                need(2)?;
                let (x, w) = (&inputs[0], &inputs[1]);
                if x.len() != 2 || w.len() != 3 || x[0] != w[0] || x[1] != w[1] {
                    return Err(format!("PerEdgeLinear shape mismatch: {x:?} vs {w:?}"));
                }
                Ok(vec![x[0], w[2]])
            }
            OpKind::PairwiseLinear => {
                need(2)?;
                let (x, w) = (&inputs[0], &inputs[1]);
                if x.len() != 2 || w.len() != 3 || x[1] != w[1] {
                    return Err(format!("PairwiseLinear shape mismatch: {x:?} vs {w:?}"));
                }
                Ok(vec![x[0], w[0], w[2]])
            }
            OpKind::LstmAggregate { hidden } => {
                need(5)?;
                let x = &inputs[0];
                if x.len() != 2 {
                    return Err("LstmAggregate x must be rank-2".into());
                }
                if inputs[1].len() != 1 || inputs[1][0] != x[0] {
                    return Err("LstmAggregate dst must be rank-1 over edges".into());
                }
                Ok(vec![Dim::Vertices, Dim::Lit(*hidden)])
            }
            OpKind::Add | OpKind::Mul => {
                need(2)?;
                if inputs[0] != inputs[1] {
                    return Err(format!(
                        "element-wise shape mismatch: {:?} vs {:?}",
                        inputs[0], inputs[1]
                    ));
                }
                Ok(inputs[0].clone())
            }
            OpKind::Relu | OpKind::LeakyRelu => {
                need(1)?;
                Ok(inputs[0].clone())
            }
            OpKind::ScaleByDegreeInv => {
                need(1)?;
                if inputs[0].len() != 2 {
                    return Err("ScaleByDegreeInv input must be rank-2".into());
                }
                Ok(inputs[0].clone())
            }
            OpKind::SegmentSoftmax => {
                need(2)?;
                if inputs[0].len() != 1 || inputs[1].len() != 1 || inputs[0] != inputs[1] {
                    return Err("SegmentSoftmax expects two matching rank-1 inputs".into());
                }
                Ok(inputs[0].clone())
            }
            OpKind::ScaleRowsByScalar => {
                need(2)?;
                let (x, s) = (&inputs[0], &inputs[1]);
                if x.len() != 2 || s.len() != 1 || x[0] != s[0] {
                    return Err(format!("ScaleRowsByScalar mismatch: {x:?} vs {s:?}"));
                }
                Ok(x.clone())
            }
            OpKind::ConcatCols => {
                need(2)?;
                let (a, b) = (&inputs[0], &inputs[1]);
                if a.len() != 2 || b.len() != 2 || a[0] != b[0] {
                    return Err(format!("ConcatCols mismatch: {a:?} vs {b:?}"));
                }
                let (Dim::Lit(ca), Dim::Lit(cb)) = (a[1], b[1]) else {
                    return Err("ConcatCols needs literal column widths".into());
                };
                Ok(vec![a[0], Dim::Lit(ca + cb)])
            }
            OpKind::Transpose => {
                need(1)?;
                let x = &inputs[0];
                if x.len() != 2 {
                    return Err(format!("Transpose needs rank-2, got {x:?}"));
                }
                Ok(vec![x[1], x[0]])
            }
            OpKind::SqueezeCol => {
                need(1)?;
                let x = &inputs[0];
                if x.len() != 2 || x[1] != Dim::Lit(1) {
                    return Err(format!("SqueezeCol needs [N, 1], got {x:?}"));
                }
                Ok(vec![x[0]])
            }
            OpKind::UnsqueezeCol => {
                need(1)?;
                let x = &inputs[0];
                if x.len() != 1 {
                    return Err(format!("UnsqueezeCol needs rank-1, got {x:?}"));
                }
                Ok(vec![x[0], Dim::Lit(1)])
            }
        }
    }

    /// Floating-point operations performed, for a given binding.
    pub fn flops(&self, inputs: &[SymShape], output: &SymShape, b: &Binding) -> f64 {
        let n = |s: &SymShape| b.numel(s) as f64;
        match self {
            OpKind::Linear => {
                // [m,k] @ [k,n] → 2·m·k·n
                let m = b.eval(inputs[0][0]) as f64;
                let k = b.eval(inputs[0][1]) as f64;
                let out_n = b.eval(inputs[1][1]) as f64;
                2.0 * m * k * out_n
            }
            OpKind::PerEdgeLinear => {
                let rows = b.eval(inputs[0][0]) as f64;
                let k = b.eval(inputs[0][1]) as f64;
                let out_n = b.eval(inputs[1][2]) as f64;
                2.0 * rows * k * out_n
            }
            OpKind::PairwiseLinear => {
                let u = b.eval(inputs[0][0]) as f64;
                let t = b.eval(inputs[1][0]) as f64;
                let k = b.eval(inputs[0][1]) as f64;
                let out_n = b.eval(inputs[1][2]) as f64;
                2.0 * u * t * k * out_n
            }
            OpKind::LstmAggregate { hidden } => {
                let e = b.eval(inputs[0][0]) as f64;
                let f = b.eval(inputs[0][1]) as f64;
                let h = *hidden as f64;
                // Per edge step: gates 2·(F+H)·4H plus ~12H element-wise.
                e * (2.0 * (f + h) * 4.0 * h + 12.0 * h)
            }
            OpKind::Add | OpKind::Mul | OpKind::Relu | OpKind::LeakyRelu => n(output),
            OpKind::ScaleByDegreeInv | OpKind::ScaleRowsByScalar => n(output),
            OpKind::SqueezeCol | OpKind::UnsqueezeCol => 0.0,
            OpKind::SegmentSoftmax => 5.0 * n(output),
            OpKind::IndexAdd { .. } => n(&inputs[0]),
            _ => 0.0,
        }
    }

    /// Bytes moved through global memory (reads of inputs + write of
    /// output), for a given binding.
    pub fn mem_bytes(&self, inputs: &[SymShape], output: &SymShape, b: &Binding) -> f64 {
        match self {
            // Pure metadata sources cost nothing by themselves; their
            // consumers account for reading them.
            OpKind::Input { .. }
            | OpKind::EdgeAttr(_)
            | OpKind::UniqueValues(_)
            | OpKind::UniqueMap(_) => 0.0,
            // Pure reshapes are views: no data movement. A transpose is
            // a strided copy.
            OpKind::SqueezeCol | OpKind::UnsqueezeCol => 0.0,
            OpKind::Transpose => {
                2.0 * b.numel(output) as f64 * 4.0
            }
            _ => {
                let reads: f64 = inputs.iter().map(|s| b.numel(s) as f64).sum();
                let writes = b.numel(output) as f64;
                4.0 * (reads + writes)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn binding() -> Binding {
        let mut unique = HashMap::new();
        unique.insert(AttrKind::SrcId, 50);
        unique.insert(AttrKind::DstId, 40);
        unique.insert(AttrKind::EdgeType, 4);
        unique.insert(AttrKind::EdgeId, 200);
        unique.insert(AttrKind::DstDegree, 10);
        unique.insert(AttrKind::SrcDegree, 12);
        unique.insert(AttrKind::SrcVertexType, 1);
        unique.insert(AttrKind::DstVertexType, 1);
        Binding {
            vertices: 100,
            edges: 200,
            edge_types: 4,
            unique,
        }
    }

    #[test]
    fn index_shapes() {
        let data = vec![Dim::Vertices, Dim::Lit(16)];
        let idx = vec![Dim::Edges];
        let out = OpKind::Index.output_shape(&[data, idx]).unwrap();
        assert_eq!(out, vec![Dim::Edges, Dim::Lit(16)]);
    }

    #[test]
    fn index2d_shapes() {
        let data = vec![
            Dim::Unique(AttrKind::SrcId),
            Dim::Unique(AttrKind::EdgeType),
            Dim::Lit(8),
        ];
        let out = OpKind::Index2D
            .output_shape(&[data, vec![Dim::Edges], vec![Dim::Edges]])
            .unwrap();
        assert_eq!(out, vec![Dim::Edges, Dim::Lit(8)]);
    }

    #[test]
    fn index_add_shapes() {
        let data = vec![Dim::Edges, Dim::Lit(8)];
        let out = OpKind::IndexAdd { out: Dim::Vertices }
            .output_shape(&[data, vec![Dim::Edges]])
            .unwrap();
        assert_eq!(out, vec![Dim::Vertices, Dim::Lit(8)]);
    }

    #[test]
    fn linear_rejects_mismatch() {
        let x = vec![Dim::Edges, Dim::Lit(8)];
        let w = vec![Dim::Lit(9), Dim::Lit(4)];
        assert!(OpKind::Linear.output_shape(&[x, w]).is_err());
    }

    #[test]
    fn pairwise_linear_shape_and_flops() {
        let b = binding();
        let x = vec![Dim::Unique(AttrKind::SrcId), Dim::Lit(8)];
        let w = vec![Dim::Unique(AttrKind::EdgeType), Dim::Lit(8), Dim::Lit(4)];
        let out = OpKind::PairwiseLinear
            .output_shape(&[x.clone(), w.clone()])
            .unwrap();
        assert_eq!(
            out,
            vec![
                Dim::Unique(AttrKind::SrcId),
                Dim::Unique(AttrKind::EdgeType),
                Dim::Lit(4)
            ]
        );
        let flops = OpKind::PairwiseLinear.flops(&[x, w], &out, &b);
        assert_eq!(flops, 2.0 * 50.0 * 4.0 * 8.0 * 4.0);
    }

    #[test]
    fn per_edge_linear_costs_more_than_pairwise_when_duplicated() {
        // 200 edges vs 50 unique src × 4 types = 200 pairs → equal FLOPs
        // here, but with fewer pairs the transformed version wins.
        let b = binding();
        let xe = vec![Dim::Edges, Dim::Lit(8)];
        let we = vec![Dim::Edges, Dim::Lit(8), Dim::Lit(4)];
        let oute = OpKind::PerEdgeLinear
            .output_shape(&[xe.clone(), we.clone()])
            .unwrap();
        let edge_flops = OpKind::PerEdgeLinear.flops(&[xe.clone(), we.clone()], &oute, &b);
        assert_eq!(edge_flops, 2.0 * 200.0 * 8.0 * 4.0);
        // Memory: per-edge weights are materialized per edge — huge.
        let edge_bytes = OpKind::PerEdgeLinear.mem_bytes(&[xe, we], &oute, &b);
        assert!(edge_bytes > 4.0 * 200.0 * 8.0 * 4.0);
    }

    #[test]
    fn lstm_flops_scale_with_edges() {
        let b = binding();
        let x = vec![Dim::Edges, Dim::Lit(16)];
        let ins = [
            x.clone(),
            vec![Dim::Edges],
            vec![Dim::Lit(16), Dim::Lit(128)],
            vec![Dim::Lit(32), Dim::Lit(128)],
            vec![Dim::Lit(128)],
        ];
        let op = OpKind::LstmAggregate { hidden: 32 };
        let out = op.output_shape(&ins).unwrap();
        assert_eq!(out, vec![Dim::Vertices, Dim::Lit(32)]);
        let flops = op.flops(&ins, &out, &b);
        assert!(flops > 200.0 * 2.0 * 48.0 * 128.0);
    }

    #[test]
    fn classification() {
        assert!(OpKind::Index.is_indexing());
        assert!(!OpKind::Index.is_neural());
        assert!(OpKind::Linear.is_neural());
        assert!(OpKind::EdgeAttr(AttrKind::SrcId).is_index_stream());
        assert!(!OpKind::Linear.is_index_stream());
    }

    #[test]
    fn concat_requires_literal_widths() {
        let a = vec![Dim::Vertices, Dim::Lit(8)];
        let bshape = vec![Dim::Vertices, Dim::Lit(4)];
        let out = OpKind::ConcatCols.output_shape(&[a, bshape]).unwrap();
        assert_eq!(out, vec![Dim::Vertices, Dim::Lit(12)]);
    }
}
