//! DFG transformation rules (paper §5.2) and the workload-guided search.
//!
//! Two equivalence-preserving rules:
//!
//! 1. **Unique value extraction** (Figure 8a): `data[attr]` becomes
//!    `data[attr_unique][attr_map]`, materializing the deduplicated values
//!    on the DFG so later rules can hoist computation onto them.
//! 2. **Indexing swapping** (Figure 8b): `OP(B[idx])` becomes `OP(B)[idx]`
//!    when `OP` is invariant to the indexed dimension; when `OP` consumes
//!    two indexed inputs (`A[B] ⊗ C[D]`), the indexes merge into a 2-D one:
//!    `(A ⊗ C)[B, D]` (the RGCN case of Figure 9).
//!
//! [`optimize`] applies the rules in topological order to a fixpoint and
//! keeps whichever candidate has the least workload under a binding.

use crate::analysis::{indexing_attrs, workload, Workload};
use crate::dim::Binding;
use crate::graph::{Dfg, NodeId};
use crate::op::OpKind;
use wisegraph_graph::AttrKind;

/// Applies unique value extraction for `attr` wherever an `Index` consumes
/// the raw `EdgeAttr(attr)` stream. Returns `None` if nothing matched.
pub fn extract_unique(dfg: &Dfg, attr: AttrKind) -> Option<Dfg> {
    let mut new = Dfg::new();
    let mut id_map: Vec<NodeId> = Vec::with_capacity(dfg.len());
    let mut uniq_node: Option<NodeId> = None;
    let mut map_node: Option<NodeId> = None;
    let mut applied = false;
    for node in dfg.nodes() {
        let new_id = if node.kind == OpKind::Index
            && matches!(dfg.node(node.inputs[1]).kind, OpKind::EdgeAttr(a) if a == attr)
        {
            let data = id_map[node.inputs[0].0];
            let u = match uniq_node {
                Some(u) => u,
                None => {
                    let u = new.add_node(OpKind::UniqueValues(attr), vec![]);
                    uniq_node = Some(u);
                    u
                }
            };
            let m = match map_node {
                Some(m) => m,
                None => {
                    let m = new.add_node(OpKind::UniqueMap(attr), vec![]);
                    map_node = Some(m);
                    m
                }
            };
            applied = true;
            let inner = new.index(data, u);
            new.index(inner, m)
        } else {
            let inputs = node.inputs.iter().map(|&p| id_map[p.0]).collect();
            new.add_node(node.kind.clone(), inputs)
        };
        id_map.push(new_id);
    }
    for &o in dfg.outputs() {
        new.mark_output(id_map[o.0]);
    }
    applied.then_some(new)
}

/// Returns `true` if the node produces an index stream suitable as the map
/// of an indexing-swap (any rank-1 index stream: a raw `EdgeAttr`, a
/// `UniqueMap`, or a derived stream).
fn is_stream(dfg: &Dfg, id: NodeId) -> bool {
    let n = dfg.node(id);
    n.kind.is_index_stream()
        || (n.kind == OpKind::Index && is_stream(dfg, n.inputs[0]))
}

/// Applies one indexing swap, if any site matches. Returns `None` at
/// fixpoint.
///
/// Recognized sites (scanned in topological order):
///
/// - `Relu/LeakyRelu(Index(x, m))` → `Index(OP(x), m)`
/// - `Linear(Index(x, m), w)` with un-indexed `w` → `Index(Linear(x, w), m)`
/// - `PerEdgeLinear(Index(x, m1), Index(w, m2))` →
///   `Index2D(PairwiseLinear(x, w), m1, m2)`
pub fn swap_indexing_once(dfg: &Dfg) -> Option<Dfg> {
    for (i, node) in dfg.nodes().iter().enumerate() {
        let rewrite = match &node.kind {
            OpKind::Relu | OpKind::LeakyRelu => {
                let inp = dfg.node(node.inputs[0]);
                if inp.kind == OpKind::Index && !dfg.node(inp.inputs[0]).kind.is_index_stream()
                {
                    Some(Rewrite::Unary {
                        site: NodeId(i),
                        op: node.kind.clone(),
                        x: inp.inputs[0],
                        map: inp.inputs[1],
                    })
                } else {
                    None
                }
            }
            OpKind::Linear => {
                let x_in = dfg.node(node.inputs[0]);
                if x_in.kind == OpKind::Index
                    && !dfg.node(x_in.inputs[0]).kind.is_index_stream()
                {
                    Some(Rewrite::LinearLeft {
                        site: NodeId(i),
                        x: x_in.inputs[0],
                        map: x_in.inputs[1],
                        w: node.inputs[1],
                    })
                } else {
                    None
                }
            }
            OpKind::PerEdgeLinear => {
                let a_in = dfg.node(node.inputs[0]);
                let b_in = dfg.node(node.inputs[1]);
                if a_in.kind == OpKind::Index
                    && b_in.kind == OpKind::Index
                    && !dfg.node(a_in.inputs[0]).kind.is_index_stream()
                    && !dfg.node(b_in.inputs[0]).kind.is_index_stream()
                    && is_stream(dfg, a_in.inputs[1])
                    && is_stream(dfg, b_in.inputs[1])
                {
                    Some(Rewrite::PairwiseMerge {
                        site: NodeId(i),
                        a: a_in.inputs[0],
                        ma: a_in.inputs[1],
                        b: b_in.inputs[0],
                        mb: b_in.inputs[1],
                    })
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(rw) = rewrite {
            return Some(apply_rewrite(dfg, rw));
        }
    }
    None
}

enum Rewrite {
    Unary {
        site: NodeId,
        op: OpKind,
        x: NodeId,
        map: NodeId,
    },
    LinearLeft {
        site: NodeId,
        x: NodeId,
        map: NodeId,
        w: NodeId,
    },
    PairwiseMerge {
        site: NodeId,
        a: NodeId,
        ma: NodeId,
        b: NodeId,
        mb: NodeId,
    },
}

fn apply_rewrite(dfg: &Dfg, rw: Rewrite) -> Dfg {
    let mut new = Dfg::new();
    let mut id_map: Vec<NodeId> = Vec::with_capacity(dfg.len());
    let site = match rw {
        Rewrite::Unary { site, .. }
        | Rewrite::LinearLeft { site, .. }
        | Rewrite::PairwiseMerge { site, .. } => site,
    };
    for (i, node) in dfg.nodes().iter().enumerate() {
        let new_id = if NodeId(i) == site {
            match &rw {
                Rewrite::Unary { op, x, map, .. } => {
                    let inner = new.add_node(op.clone(), vec![id_map[x.0]]);
                    new.index(inner, id_map[map.0])
                }
                Rewrite::LinearLeft { x, map, w, .. } => {
                    let inner = new.linear(id_map[x.0], id_map[w.0]);
                    new.index(inner, id_map[map.0])
                }
                Rewrite::PairwiseMerge { a, ma, b, mb, .. } => {
                    let pair = new.pairwise_linear(id_map[a.0], id_map[b.0]);
                    new.index2d(pair, id_map[ma.0], id_map[mb.0])
                }
            }
        } else {
            let inputs = node.inputs.iter().map(|&p| id_map[p.0]).collect();
            new.add_node(node.kind.clone(), inputs)
        };
        id_map.push(new_id);
    }
    for &o in dfg.outputs() {
        new.mark_output(id_map[o.0]);
    }
    new
}

/// Applies indexing swaps until fixpoint (bounded to guard against cycles).
pub fn swap_indexing_fixpoint(dfg: &Dfg) -> Dfg {
    let mut current = dfg.clone();
    for _ in 0..64 {
        match swap_indexing_once(&current) {
            Some(next) => current = next,
            None => break,
        }
    }
    current
}

/// Scalar cost used to rank candidate DFGs: FLOPs plus bytes, the two
/// workload components the transformations trade against each other. (The
/// full device-aware cost lives in `wisegraph-sim`; this ranking only needs
/// monotonicity in both.)
pub fn transform_cost(w: &Workload) -> f64 {
    w.flops() + w.bytes()
}

/// The candidate DFGs the transformation search considers: the original,
/// the swap-only variant, and extraction(+swap) variants for each indexing
/// attribute with duplication under `binding`.
pub fn candidates(dfg: &Dfg, binding: &Binding) -> Vec<Dfg> {
    let mut cands = vec![dfg.clone(), swap_indexing_fixpoint(dfg)];
    let mut extracted = dfg.clone();
    let mut any = false;
    for attr in indexing_attrs(dfg) {
        let uniq = binding.unique.get(&attr).copied().unwrap_or(usize::MAX);
        if uniq < binding.edges {
            if let Some(next) = extract_unique(&extracted, attr) {
                extracted = next;
                any = true;
            }
        }
    }
    if any {
        cands.push(extracted.clone());
        cands.push(swap_indexing_fixpoint(&extracted));
    }
    cands
}

/// Picks the least-workload equivalent DFG under `binding`.
pub fn optimize(dfg: &Dfg, binding: &Binding) -> (Dfg, Workload) {
    candidates(dfg, binding)
        .into_iter()
        .map(|d| {
            let w = workload(&d, binding);
            (d, w)
        })
        .min_by(|a, b| {
            transform_cost(&a.1)
                .partial_cmp(&transform_cost(&b.1))
                .expect("workload is finite")
        })
        .expect("at least the original candidate exists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::Dim;
    use crate::interp::execute;
    use std::collections::HashMap;
    use wisegraph_graph::generate::{rmat, RmatParams};
    use wisegraph_graph::Graph;
    use wisegraph_tensor::Tensor;

    fn rand_tensor(dims: &[usize], seed: u64) -> Tensor {
        let n: usize = dims.iter().product();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let data = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / u32::MAX as f32) - 0.5
            })
            .collect();
        Tensor::from_vec(data, dims)
    }

    fn rgcn_dfg(f_in: usize, f_out: usize) -> Dfg {
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(f_in)]);
        let w = d.input(
            "W",
            vec![Dim::EdgeTypes, Dim::Lit(f_in), Dim::Lit(f_out)],
        );
        let src = d.edge_attr(AttrKind::SrcId);
        let ty = d.edge_attr(AttrKind::EdgeType);
        let dst = d.edge_attr(AttrKind::DstId);
        let hsrc = d.index(h, src);
        let wt = d.index(w, ty);
        let msg = d.per_edge_linear(hsrc, wt);
        let out = d.index_add(msg, dst, Dim::Vertices);
        d.mark_output(out);
        d
    }

    fn rgcn_inputs(g: &Graph, f_in: usize, f_out: usize) -> HashMap<String, Tensor> {
        let mut inputs = HashMap::new();
        inputs.insert("h".into(), rand_tensor(&[g.num_vertices(), f_in], 11));
        inputs.insert(
            "W".into(),
            rand_tensor(&[g.num_edge_types(), f_in, f_out], 12),
        );
        inputs
    }

    #[test]
    fn extraction_preserves_semantics() {
        let g = rmat(&RmatParams::standard(60, 400, 21).with_edge_types(3));
        let d = rgcn_dfg(4, 3);
        let e1 = extract_unique(&d, AttrKind::SrcId).expect("applies");
        let e2 = extract_unique(&e1, AttrKind::EdgeType).expect("applies");
        let inputs = rgcn_inputs(&g, 4, 3);
        let a = &execute(&d, &g, &inputs).unwrap()[0];
        let b = &execute(&e2, &g, &inputs).unwrap()[0];
        assert!(a.allclose(b, 1e-4), "diff {}", a.max_abs_diff(b));
    }

    #[test]
    fn extraction_is_none_when_no_site() {
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(4)]);
        d.mark_output(h);
        assert!(extract_unique(&d, AttrKind::SrcId).is_none());
    }

    #[test]
    fn full_rgcn_transformation_matches_figure9() {
        // Extraction + swaps should end with PairwiseLinear + Index2D.
        let d = rgcn_dfg(4, 3);
        let e1 = extract_unique(&d, AttrKind::SrcId).unwrap();
        let e2 = extract_unique(&e1, AttrKind::EdgeType).unwrap();
        let t = swap_indexing_fixpoint(&e2);
        let has_pairwise = t
            .nodes()
            .iter()
            .any(|n| n.kind == OpKind::PairwiseLinear);
        let has_index2d = t.nodes().iter().any(|n| n.kind == OpKind::Index2D);
        assert!(has_pairwise && has_index2d, "{t:?}");
        // No PerEdgeLinear remains live.
        let live = t.live_set();
        let live_per_edge = t
            .nodes()
            .iter()
            .enumerate()
            .any(|(i, n)| live[i] && n.kind == OpKind::PerEdgeLinear);
        assert!(!live_per_edge);
    }

    #[test]
    fn transformed_rgcn_equivalent_on_random_graphs() {
        for seed in [1u64, 2, 3] {
            let g = rmat(&RmatParams::standard(40, 300, seed).with_edge_types(4));
            let d = rgcn_dfg(5, 4);
            let b = Binding::from_graph(&g);
            let (opt, _) = optimize(&d, &b);
            let inputs = rgcn_inputs(&g, 5, 4);
            let a = &execute(&d, &g, &inputs).unwrap()[0];
            let o = &execute(&opt, &g, &inputs).unwrap()[0];
            assert!(a.allclose(o, 1e-3), "seed {seed}: diff {}", a.max_abs_diff(o));
        }
    }

    #[test]
    fn optimize_reduces_workload_for_duplicated_rgcn() {
        // A graph with heavy src duplication: few vertices, many edges.
        let g = rmat(&RmatParams::standard(32, 2000, 5).with_edge_types(2));
        let d = rgcn_dfg(16, 16);
        let b = Binding::from_graph(&g);
        let base = workload(&d, &b);
        let (_, opt) = optimize(&d, &b);
        assert!(
            transform_cost(&opt) < transform_cost(&base) / 4.0,
            "expected ≥4× workload reduction: base {} opt {}",
            transform_cost(&base),
            transform_cost(&opt)
        );
        // The neural-FLOP reduction is the Figure 17 effect.
        assert!(opt.neural_flops < base.neural_flops / 4.0);
    }

    #[test]
    fn linear_hoisting_swap() {
        // GAT-like: Linear(Index(h, src), w) → Index(Linear(h, w), src).
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(6)]);
        let w = d.input("w", vec![Dim::Lit(6), Dim::Lit(2)]);
        let src = d.edge_attr(AttrKind::SrcId);
        let hsrc = d.index(h, src);
        let proj = d.linear(hsrc, w);
        d.mark_output(proj);

        let swapped = swap_indexing_once(&d).expect("swap applies");
        // After the swap the Linear runs on |V| rows, not |E|.
        let lin = swapped
            .nodes()
            .iter()
            .find(|n| n.kind == OpKind::Linear)
            .unwrap();
        assert_eq!(lin.shape[0], Dim::Vertices);

        let g = rmat(&RmatParams::standard(30, 200, 9));
        let mut inputs = HashMap::new();
        inputs.insert("h".into(), rand_tensor(&[30, 6], 31));
        inputs.insert("w".into(), rand_tensor(&[6, 2], 32));
        let a = &execute(&d, &g, &inputs).unwrap()[0];
        let b = &execute(&swapped, &g, &inputs).unwrap()[0];
        assert!(a.allclose(b, 1e-4));
    }

    #[test]
    fn unary_swap_preserves_relu() {
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(4)]);
        let src = d.edge_attr(AttrKind::SrcId);
        let hsrc = d.index(h, src);
        let act = d.leaky_relu(hsrc);
        d.mark_output(act);
        let swapped = swap_indexing_fixpoint(&d);
        let g = rmat(&RmatParams::standard(25, 150, 17));
        let mut inputs = HashMap::new();
        inputs.insert("h".into(), rand_tensor(&[25, 4], 41));
        let a = &execute(&d, &g, &inputs).unwrap()[0];
        let b = &execute(&swapped, &g, &inputs).unwrap()[0];
        assert!(a.allclose(b, 1e-5));
    }

    #[test]
    fn optimize_keeps_original_when_no_duplication_helps() {
        // GCN (no per-edge weights): candidates should not regress.
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(8)]);
        let w = d.input("w", vec![Dim::Lit(8), Dim::Lit(8)]);
        let src = d.edge_attr(AttrKind::SrcId);
        let dst = d.edge_attr(AttrKind::DstId);
        let hsrc = d.index(h, src);
        let agg = d.index_add(hsrc, dst, Dim::Vertices);
        let norm = d.scale_by_degree_inv(agg);
        let out = d.linear(norm, w);
        d.mark_output(out);

        let g = rmat(&RmatParams::standard(64, 512, 3));
        let b = Binding::from_graph(&g);
        let base_cost = transform_cost(&workload(&d, &b));
        let (_, opt) = optimize(&d, &b);
        assert!(transform_cost(&opt) <= base_cost);
    }
}
