//! The GNN operation data-flow graph (DFG) IR.
//!
//! A GNN model is a DFG of *indexing operations* (data movement along graph
//! structure) and *neural operations* (dense computation) — paper §2.1 and
//! Figure 2(c). This crate provides:
//!
//! - [`dim`]: symbolic tensor dimensions (`|V|`, `|E|`, `uniq(attr)`, …) and
//!   concrete [`dim::Binding`]s derived from a graph or a gTask;
//! - [`op`]: the operation vocabulary with per-op shape inference, FLOP and
//!   memory-traffic accounting;
//! - [`graph`]: the [`Dfg`] container with a builder API, validation and
//!   topological iteration;
//! - [`analysis`]: identification of *indexing edge attributes* (§4.1) and
//!   whole-DFG workload summaries;
//! - [`transform`]: the two DFG transformation rules of §5.2 — *unique value
//!   extraction* and *indexing swapping* (with Index-2D merging) — plus the
//!   workload-guided search that picks the cheapest equivalent DFG;
//! - [`interp`]: a reference interpreter that executes a DFG on a concrete
//!   graph and tensors, used to verify transformations preserve semantics;
//! - [`backward`]: gradient-DFG construction (the adjoint program), used to
//!   validate the estimators' forward+backward cost multiplier.

pub mod analysis;
pub mod backward;
pub mod dim;
pub mod graph;
pub mod interp;
pub mod op;
pub mod passes;
pub mod transform;

pub use dim::{Binding, Dim, SymShape};
pub use graph::{Dfg, NodeId};
pub use op::OpKind;
