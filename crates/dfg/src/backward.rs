//! Backward-pass DFG construction.
//!
//! Training executes the forward DFG *and* its gradient: the paper's
//! measured iteration times are forward + backward, and WiseGraph's joint
//! partition applies to both (the adjoint of a gather is a scatter-add, so
//! the backward pass has the same gTask structure with source/destination
//! roles swapped). This module builds the gradient computation as a DFG:
//!
//! - it is validated numerically against the autograd tape;
//! - its workload, relative to the forward DFG, grounds the
//!   forward+backward cost multiplier the estimators use (`TRAIN_FACTOR`).
//!
//! Supported operations are the linear core of the GNN layers (`Index`,
//! `IndexAdd`, `Linear`, `Add`, `ScaleByDegreeInv`, `Transpose`);
//! nonlinearities gate gradients element-wise and change workloads only
//! marginally.

use crate::analysis::{workload, Workload};
use crate::dim::Dim;
use crate::graph::{Dfg, NodeId};
use crate::op::OpKind;
use std::collections::HashMap;

/// The gradient DFG and its interface.
#[derive(Clone, Debug)]
pub struct GradientDfg {
    /// The backward computation. Its inputs are the forward inputs plus a
    /// tensor named [`GradientDfg::GRAD_OUT`] with the shape of the
    /// forward output; its outputs are gradients of the requested inputs,
    /// in request order.
    pub dfg: Dfg,
    /// The forward-input names whose gradients are produced, in output
    /// order.
    pub wrt: Vec<String>,
}

impl GradientDfg {
    /// Name of the upstream-gradient input tensor.
    pub const GRAD_OUT: &'static str = "grad_out";
}

/// Error for unsupported constructs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BackwardError(pub String);

impl std::fmt::Display for BackwardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "backward construction error: {}", self.0)
    }
}

impl std::error::Error for BackwardError {}

/// Builds the gradient DFG of `forward` (which must have exactly one
/// output) with respect to the named inputs.
///
/// # Errors
///
/// Returns an error if the forward DFG has an unsupported operation on a
/// gradient path or does not have exactly one output.
pub fn gradient_dfg(forward: &Dfg, wrt: &[&str]) -> Result<GradientDfg, BackwardError> {
    let [out] = forward.outputs() else {
        return Err(BackwardError("forward DFG must have one output".into()));
    };
    let out = *out;

    let mut g = Dfg::new();
    // Mirror the entire forward computation into the gradient DFG
    // (checkpoint-free rematerialization): the adjoints of `Linear` need
    // forward activations, and recomputing them keeps the gradient DFG
    // self-contained. Liveness pruning drops whatever the requested
    // gradients do not use.
    let mut mirror: HashMap<NodeId, NodeId> = HashMap::new();
    for (i, node) in forward.nodes().iter().enumerate() {
        let id = NodeId(i);
        let inputs: Vec<NodeId> = node.inputs.iter().map(|p| mirror[p]).collect();
        mirror.insert(id, g.add_node(node.kind.clone(), inputs));
    }
    // The upstream gradient has the forward output's shape.
    let grad_out = g.input(GradientDfg::GRAD_OUT, forward.node(out).shape.clone());

    // Reverse pass: per forward node, the node in `g` holding its gradient.
    let mut grads: HashMap<NodeId, NodeId> = HashMap::new();
    grads.insert(out, grad_out);
    let live = forward.live_set();
    for i in (0..forward.len()).rev() {
        let id = NodeId(i);
        if !live[i] {
            continue;
        }
        let Some(&gy) = grads.get(&id) else {
            continue; // not on a gradient path
        };
        let node = forward.node(id);
        let accumulate = |grads: &mut HashMap<NodeId, NodeId>,
                              g: &mut Dfg,
                              target: NodeId,
                              contribution: NodeId| {
            match grads.get(&target) {
                Some(&existing) => {
                    let sum = g.add(existing, contribution);
                    grads.insert(target, sum);
                }
                None => {
                    grads.insert(target, contribution);
                }
            }
        };
        match &node.kind {
            OpKind::Input { .. }
            | OpKind::EdgeAttr(_)
            | OpKind::UniqueValues(_)
            | OpKind::UniqueMap(_) => {}
            OpKind::Index => {
                // y = x[idx]  ⇒  dx[idx] += dy (the adjoint scatter).
                let data = node.inputs[0];
                let rows = forward.node(data).shape[0];
                let idx = mirror[&node.inputs[1]];
                let gx = g.index_add(gy, idx, rows);
                accumulate(&mut grads, &mut g, data, gx);
            }
            OpKind::IndexAdd { .. } => {
                // y[idx] += x  ⇒  dx = dy[idx] (the adjoint gather).
                let idx = mirror[&node.inputs[1]];
                let gx = g.index(gy, idx);
                accumulate(&mut grads, &mut g, node.inputs[0], gx);
            }
            OpKind::Linear => {
                // y = x @ w  ⇒  dx = dy @ wᵀ; dw = xᵀ @ dy. Both forward
                // operands are mirrored (rematerialized) in `g`.
                let (x, w) = (node.inputs[0], node.inputs[1]);
                let wt = g.transpose(mirror[&w]);
                let gx = g.linear(gy, wt);
                accumulate(&mut grads, &mut g, x, gx);
                let xt = g.transpose(mirror[&x]);
                let gw = g.linear(xt, gy);
                accumulate(&mut grads, &mut g, w, gw);
            }
            OpKind::Add => {
                accumulate(&mut grads, &mut g, node.inputs[0], gy);
                accumulate(&mut grads, &mut g, node.inputs[1], gy);
            }
            OpKind::ScaleByDegreeInv => {
                // Diagonal, self-adjoint.
                let gx = g.scale_by_degree_inv(gy);
                accumulate(&mut grads, &mut g, node.inputs[0], gx);
            }
            OpKind::Transpose => {
                let gx = g.transpose(gy);
                accumulate(&mut grads, &mut g, node.inputs[0], gx);
            }
            other => {
                return Err(BackwardError(format!(
                    "unsupported operation on gradient path: {other:?}"
                )));
            }
        }
    }

    // Mark requested gradients as outputs.
    let mut produced = Vec::new();
    for &name in wrt {
        let target = forward
            .nodes()
            .iter()
            .enumerate()
            .find_map(|(i, n)| match &n.kind {
                OpKind::Input { name: n2, .. } if n2 == name => Some(NodeId(i)),
                _ => None,
            })
            .ok_or_else(|| BackwardError(format!("no input named '{name}'")))?;
        let grad = grads.get(&target).copied().ok_or_else(|| {
            BackwardError(format!("input '{name}' does not reach the output"))
        })?;
        g.mark_output(grad);
        produced.push(name.to_string());
    }
    Ok(GradientDfg {
        dfg: g,
        wrt: produced,
    })
}

/// Forward + backward workload of a layer, under a binding: the measured
/// basis for the estimators' train-step multiplier.
pub fn train_step_workload(
    forward: &Dfg,
    wrt: &[&str],
    binding: &crate::dim::Binding,
) -> Result<(Workload, Workload), BackwardError> {
    let back = gradient_dfg(forward, wrt)?;
    Ok((workload(forward, binding), workload(&back.dfg, binding)))
}

/// Convenience: a GCN-style layer's `Dim` for vertex-count rows.
pub fn vertex_rows() -> Dim {
    Dim::Vertices
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::Binding;
    use crate::interp::execute;
    use std::collections::HashMap as Map;
    use wisegraph_graph::generate::{rmat, RmatParams};
    use wisegraph_graph::AttrKind;
    use wisegraph_tensor::{init, Tape, Tensor};

    /// GCN layer without the nonlinearity: gather → reduce → norm → W.
    fn gcn_linear(fi: usize, fo: usize) -> Dfg {
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(fi)]);
        let w = d.input("w", vec![Dim::Lit(fi), Dim::Lit(fo)]);
        let src = d.edge_attr(AttrKind::SrcId);
        let dst = d.edge_attr(AttrKind::DstId);
        let hsrc = d.index(h, src);
        let agg = d.index_add(hsrc, dst, Dim::Vertices);
        let norm = d.scale_by_degree_inv(agg);
        let out = d.linear(norm, w);
        d.mark_output(out);
        d
    }

    #[test]
    fn gradients_match_autograd_tape() {
        let g = rmat(&RmatParams::standard(40, 250, 61));
        let (fi, fo) = (4, 3);
        let forward = gcn_linear(fi, fo);
        let back = gradient_dfg(&forward, &["h", "w"]).unwrap();

        let h = init::uniform_tensor(&[40, fi], -1.0, 1.0, 1);
        let w = init::uniform_tensor(&[fi, fo], -1.0, 1.0, 2);
        // Upstream gradient of sum() is all-ones.
        let mut inputs: Map<String, Tensor> = Map::new();
        inputs.insert("h".into(), h.clone());
        inputs.insert("w".into(), w.clone());
        inputs.insert(
            GradientDfg::GRAD_OUT.into(),
            Tensor::ones(&[40, fo]),
        );
        let grads = execute(&back.dfg, &g, &inputs).unwrap();

        // Reference: the autograd tape on the same computation.
        let tape = Tape::new();
        let hv = tape.param(h);
        let wv = tape.param(w);
        let gathered = tape.gather_rows(hv, g.src().to_vec());
        let agg = tape.index_add_rows(40, gathered, g.dst().to_vec());
        let deg = Tensor::from_vec(
            g.in_degree()
                .iter()
                .map(|&d| 1.0 / (d.max(1) as f32))
                .collect(),
            &[40],
        );
        let norm = tape.scale_rows_const(agg, deg);
        let out = tape.matmul(norm, wv);
        let loss = tape.sum(out);
        tape.backward(loss);

        let gh = tape.grad(hv).unwrap();
        let gw = tape.grad(wv).unwrap();
        assert!(
            gh.allclose(&grads[0], 1e-3),
            "dh diff {}",
            gh.max_abs_diff(&grads[0])
        );
        assert!(
            gw.allclose(&grads[1], 1e-3),
            "dw diff {}",
            gw.max_abs_diff(&grads[1])
        );
    }

    #[test]
    fn backward_workload_grounds_train_factor() {
        // The backward DFG costs roughly 1–2.5× the forward (two matmul
        // adjoints + the scatter/gather adjoints): forward+backward ≈ 2–3×
        // forward, the TRAIN_FACTOR band the estimators use.
        let g = rmat(&RmatParams::standard(2000, 30_000, 63));
        let forward = gcn_linear(64, 64);
        let b = Binding::from_graph(&g);
        let (fw, bw) = train_step_workload(&forward, &["h", "w"], &b).unwrap();
        let ratio = (fw.flops() + bw.flops()) / fw.flops();
        assert!(
            (1.8..=3.5).contains(&ratio),
            "forward+backward / forward = {ratio}"
        );
    }

    #[test]
    fn adjoint_structure_swaps_gather_and_scatter() {
        let forward = gcn_linear(8, 8);
        let back = gradient_dfg(&forward, &["h"]).unwrap();
        let count = |d: &Dfg, pred: &dyn Fn(&OpKind) -> bool| {
            let live = d.live_set();
            d.nodes()
                .iter()
                .enumerate()
                .filter(|(i, n)| live[*i] && pred(&n.kind))
                .count()
        };
        // Forward has one gather and one scatter; the backward path to dh
        // has the adjoints: one gather (of grad) and one scatter.
        assert_eq!(count(&back.dfg, &|k| matches!(k, OpKind::Index)), 1);
        assert_eq!(
            count(&back.dfg, &|k| matches!(k, OpKind::IndexAdd { .. })),
            1
        );
    }

    #[test]
    fn unsupported_ops_are_rejected() {
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(4)]);
        let r = d.relu(h);
        d.mark_output(r);
        let err = gradient_dfg(&d, &["h"]).unwrap_err();
        assert!(err.0.contains("unsupported"), "{err}");
    }

    #[test]
    fn unknown_input_is_rejected() {
        let d = gcn_linear(4, 4);
        assert!(gradient_dfg(&d, &["nope"]).is_err());
    }
}
