//! The DFG container and its builder API.

use crate::dim::{Dim, SymShape};
use crate::op::OpKind;
use wisegraph_graph::AttrKind;

/// Identifier of a node within a [`Dfg`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// One operation instance in the DFG.
#[derive(Clone, Debug)]
pub struct Node {
    /// The operation.
    pub kind: OpKind,
    /// Producer nodes feeding this op, in argument order.
    pub inputs: Vec<NodeId>,
    /// Inferred output shape.
    pub shape: SymShape,
}

/// A data-flow graph of GNN operations.
///
/// Nodes are appended through the builder methods, so the vector order is
/// already topological: every node's inputs precede it.
#[derive(Clone, Debug, Default)]
pub struct Dfg {
    nodes: Vec<Node>,
    outputs: Vec<NodeId>,
}

impl Dfg {
    /// Creates an empty DFG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with explicit kind and inputs, validating shapes.
    ///
    /// # Panics
    ///
    /// Panics if an input id is out of range or the shapes are invalid for
    /// the operation (the builder is used with model code where a mismatch
    /// is a programming error).
    pub fn add_node(&mut self, kind: OpKind, inputs: Vec<NodeId>) -> NodeId {
        let in_shapes: Vec<SymShape> = inputs
            .iter()
            .map(|&NodeId(i)| {
                assert!(i < self.nodes.len(), "input NodeId({i}) out of range");
                self.nodes[i].shape.clone()
            })
            .collect();
        let shape = kind
            .output_shape(&in_shapes)
            .unwrap_or_else(|e| panic!("invalid DFG node {kind:?}: {e}"));
        self.nodes.push(Node {
            kind,
            inputs,
            shape,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Appends a node without validating inputs or re-inferring its shape.
    ///
    /// The builder API ([`Dfg::add_node`]) panics on malformed nodes, which
    /// is right for model code but makes ill-formed graphs impossible to
    /// construct when testing checkers. This constructor trusts the caller
    /// completely: dangling input ids, forward references, and wrong shapes
    /// are all accepted and only surface when a verifier (or executor)
    /// walks the graph.
    pub fn add_node_unchecked(
        &mut self,
        kind: OpKind,
        inputs: Vec<NodeId>,
        shape: SymShape,
    ) -> NodeId {
        self.nodes.push(Node {
            kind,
            inputs,
            shape,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Declares a dense input tensor.
    pub fn input(&mut self, name: &str, shape: SymShape) -> NodeId {
        self.add_node(
            OpKind::Input {
                name: name.to_string(),
                shape,
            },
            vec![],
        )
    }

    /// Declares an edge-attribute index stream.
    pub fn edge_attr(&mut self, attr: AttrKind) -> NodeId {
        self.add_node(OpKind::EdgeAttr(attr), vec![])
    }

    /// Gather along the first dimension.
    pub fn index(&mut self, data: NodeId, idx: NodeId) -> NodeId {
        self.add_node(OpKind::Index, vec![data, idx])
    }

    /// Gather along the first two dimensions.
    pub fn index2d(&mut self, data: NodeId, idx1: NodeId, idx2: NodeId) -> NodeId {
        self.add_node(OpKind::Index2D, vec![data, idx1, idx2])
    }

    /// Scatter-add into `out` rows.
    pub fn index_add(&mut self, data: NodeId, idx: NodeId, out: Dim) -> NodeId {
        self.add_node(OpKind::IndexAdd { out }, vec![data, idx])
    }

    /// Dense matrix product with a shared weight.
    pub fn linear(&mut self, x: NodeId, w: NodeId) -> NodeId {
        self.add_node(OpKind::Linear, vec![x, w])
    }

    /// Row-wise product with per-row weights.
    pub fn per_edge_linear(&mut self, x: NodeId, w: NodeId) -> NodeId {
        self.add_node(OpKind::PerEdgeLinear, vec![x, w])
    }

    /// All-pairs product (`(A ⊗ C)` of the Index-2D merge).
    pub fn pairwise_linear(&mut self, x: NodeId, w: NodeId) -> NodeId {
        self.add_node(OpKind::PairwiseLinear, vec![x, w])
    }

    /// LSTM aggregation over in-neighbors per destination vertex.
    pub fn lstm_aggregate(
        &mut self,
        x: NodeId,
        dst: NodeId,
        wx: NodeId,
        wh: NodeId,
        b: NodeId,
        hidden: usize,
    ) -> NodeId {
        self.add_node(
            OpKind::LstmAggregate { hidden },
            vec![x, dst, wx, wh, b],
        )
    }

    /// Element-wise addition.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.add_node(OpKind::Add, vec![a, b])
    }

    /// Element-wise multiplication.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.add_node(OpKind::Mul, vec![a, b])
    }

    /// ReLU activation.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        self.add_node(OpKind::Relu, vec![a])
    }

    /// Leaky ReLU activation.
    pub fn leaky_relu(&mut self, a: NodeId) -> NodeId {
        self.add_node(OpKind::LeakyRelu, vec![a])
    }

    /// Degree normalization of a `[V, F]` tensor.
    pub fn scale_by_degree_inv(&mut self, x: NodeId) -> NodeId {
        self.add_node(OpKind::ScaleByDegreeInv, vec![x])
    }

    /// Per-segment softmax of edge scores.
    pub fn segment_softmax(&mut self, scores: NodeId, seg: NodeId) -> NodeId {
        self.add_node(OpKind::SegmentSoftmax, vec![scores, seg])
    }

    /// Row scaling by a per-row scalar.
    pub fn scale_rows(&mut self, x: NodeId, s: NodeId) -> NodeId {
        self.add_node(OpKind::ScaleRowsByScalar, vec![x, s])
    }

    /// Column concatenation.
    pub fn concat_cols(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.add_node(OpKind::ConcatCols, vec![a, b])
    }

    /// Transposes a rank-2 node.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        self.add_node(OpKind::Transpose, vec![a])
    }

    /// Drops a trailing singleton column.
    pub fn squeeze_col(&mut self, a: NodeId) -> NodeId {
        self.add_node(OpKind::SqueezeCol, vec![a])
    }

    /// Adds a trailing singleton column.
    pub fn unsqueeze_col(&mut self, a: NodeId) -> NodeId {
        self.add_node(OpKind::UnsqueezeCol, vec![a])
    }

    /// Marks a node as a DFG output.
    pub fn mark_output(&mut self, id: NodeId) {
        self.outputs.push(id);
    }

    /// The declared outputs.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// All nodes, in topological (insertion) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the DFG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access one node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// For each node, the list of nodes that consume its output.
    pub fn consumers(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            for &NodeId(p) in &n.inputs {
                out[p].push(NodeId(i));
            }
        }
        out
    }

    /// Returns the set of nodes reachable (backwards) from the outputs:
    /// the live part of the graph.
    pub fn live_set(&self) -> Vec<bool> {
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = self.outputs.iter().map(|o| o.0).collect();
        while let Some(i) = stack.pop() {
            if live[i] {
                continue;
            }
            live[i] = true;
            stack.extend(self.nodes[i].inputs.iter().map(|p| p.0));
        }
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_rgcn_like_dfg() {
        // Figure 2(c): h[src] and W[type] through MLP, reduced by dst.
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(8)]);
        let w = d.input("W", vec![Dim::EdgeTypes, Dim::Lit(8), Dim::Lit(4)]);
        let src = d.edge_attr(AttrKind::SrcId);
        let ty = d.edge_attr(AttrKind::EdgeType);
        let dst = d.edge_attr(AttrKind::DstId);
        let hsrc = d.index(h, src);
        let wt = d.index(w, ty);
        let msg = d.per_edge_linear(hsrc, wt);
        let out = d.index_add(msg, dst, Dim::Vertices);
        d.mark_output(out);

        assert_eq!(d.len(), 9);
        assert_eq!(d.node(out).shape, vec![Dim::Vertices, Dim::Lit(4)]);
        assert_eq!(d.node(hsrc).shape, vec![Dim::Edges, Dim::Lit(8)]);
        assert_eq!(
            d.node(wt).shape,
            vec![Dim::Edges, Dim::Lit(8), Dim::Lit(4)]
        );
    }

    #[test]
    fn consumers_and_liveness() {
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(4)]);
        let w = d.input("w", vec![Dim::Lit(4), Dim::Lit(2)]);
        let dead = d.input("unused", vec![Dim::Lit(1)]);
        let y = d.linear(h, w);
        d.mark_output(y);

        let cons = d.consumers();
        assert_eq!(cons[h.0], vec![y]);
        assert_eq!(cons[w.0], vec![y]);
        assert!(cons[dead.0].is_empty());

        let live = d.live_set();
        assert!(live[h.0] && live[w.0] && live[y.0]);
        assert!(!live[dead.0]);
    }

    #[test]
    #[should_panic(expected = "invalid DFG node")]
    fn builder_rejects_bad_shapes() {
        let mut d = Dfg::new();
        let h = d.input("h", vec![Dim::Vertices, Dim::Lit(4)]);
        let w = d.input("w", vec![Dim::Lit(5), Dim::Lit(2)]);
        d.linear(h, w);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_bad_ids() {
        let mut d = Dfg::new();
        d.add_node(OpKind::Relu, vec![NodeId(3)]);
    }
}
