//! Device-memory footprint tracking and out-of-memory detection.
//!
//! Tensor-centric execution materializes per-edge tensors in global memory;
//! on dense graphs that exceeds device capacity — the white (OOM) cells of
//! Figure 13. Executors register their persistent and transient allocations
//! here and ask whether the peak fits.

/// Tracks the peak resident bytes of an execution plan.
#[derive(Clone, Debug, Default)]
pub struct MemoryTracker {
    persistent: f64,
    transient_current: f64,
    transient_peak: f64,
}

impl MemoryTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers memory resident for the whole run (graph topology,
    /// embeddings, weights).
    pub fn persistent(&mut self, bytes: f64) {
        self.persistent += bytes;
    }

    /// Registers a transient allocation (an intermediate tensor).
    pub fn alloc(&mut self, bytes: f64) {
        self.transient_current += bytes;
        self.transient_peak = self.transient_peak.max(self.transient_current);
    }

    /// Releases a transient allocation.
    ///
    /// # Panics
    ///
    /// Panics if more bytes are freed than currently allocated (a plan
    /// accounting bug).
    pub fn free(&mut self, bytes: f64) {
        assert!(
            bytes <= self.transient_current + 1.0,
            "freeing {bytes} B with only {} B live",
            self.transient_current
        );
        self.transient_current -= bytes;
    }

    /// Peak resident bytes seen so far.
    pub fn peak(&self) -> f64 {
        self.persistent + self.transient_peak
    }

    /// Whether the peak fits in `capacity` bytes.
    pub fn fits(&self, capacity: f64) -> bool {
        self.peak() <= capacity
    }
}

/// Convenience: bytes of an `f32` tensor with the given extents.
pub fn tensor_bytes(dims: &[usize]) -> f64 {
    dims.iter().product::<usize>() as f64 * 4.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m = MemoryTracker::new();
        m.persistent(100.0);
        m.alloc(50.0);
        m.alloc(30.0);
        m.free(50.0);
        m.alloc(10.0);
        assert_eq!(m.peak(), 180.0);
    }

    #[test]
    fn fits_respects_capacity() {
        let mut m = MemoryTracker::new();
        m.persistent(30e9);
        assert!(m.fits(40e9));
        m.alloc(15e9);
        assert!(!m.fits(40e9));
    }

    #[test]
    #[should_panic(expected = "freeing")]
    fn over_free_panics() {
        let mut m = MemoryTracker::new();
        m.alloc(10.0);
        m.free(20.0);
    }

    #[test]
    fn tensor_bytes_f32() {
        assert_eq!(tensor_bytes(&[1000, 128]), 512_000.0);
    }

    #[test]
    fn reddit_like_edge_materialization_overflows_a100() {
        // 114M edges x 602 features x 4 B = ~274 GB >> 40 GB.
        let mut m = MemoryTracker::new();
        m.alloc(tensor_bytes(&[114_000_000, 602]));
        assert!(!m.fits(40e9));
    }
}
