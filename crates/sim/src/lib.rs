//! Calibrated analytic device model standing in for the paper's testbed.
//!
//! The paper evaluates on NVIDIA A100-PCIe GPUs (4x for multi-GPU, §7.1).
//! This environment has no GPU, so — per the reproduction's substitution
//! rule — every "measured" time in the benchmark harnesses is produced by
//! running the real partition/kernel-generation pipeline and costing the
//! resulting kernels with this roofline-style model:
//!
//! - [`device`]: an A100-like [`device::DeviceSpec`] (CUDA-core and
//!   tensor-core peaks, HBM bandwidth, launch latency, SM count) and the
//!   per-kernel time estimator, with efficiency factors that depend on the
//!   *compute class* (edge-wise vs. batched vs. dense) and the batching
//!   degree — the effects Figures 3 and 18 hinge on;
//! - [`memory`]: a footprint tracker for out-of-memory detection (the white
//!   cells of Figure 13);
//! - [`schedule`]: a list scheduler over execution units that exposes
//!   long-tail effects from imbalanced gTasks and the benefit of
//!   differentiated priorities (Figure 12, Figure 19);
//! - [`fabric`]: a PCIe-like interconnect with collective cost formulas
//!   (all-to-all, all-reduce, reduce-scatter, all-gather) for multi-device
//!   operation placement (Table 2, Figure 20);
//! - [`volume`]: the Figure-11 placement-candidate payload arithmetic,
//!   shared between the closed-form cost model and the sharded executor's
//!   placement selector so the two can never disagree.
//!
//! All estimators are deterministic, pure functions — runs are exactly
//! reproducible.

pub mod device;
pub mod fabric;
pub mod memory;
pub mod pipeline;
pub mod schedule;
pub mod volume;

pub use device::{ComputeClass, DeviceSpec, KernelCost};
pub use fabric::Fabric;
pub use memory::MemoryTracker;
pub use volume::{PlacementKind, PlacementVolumes};
