//! Event-driven multi-device pipeline simulation.
//!
//! The algebraic estimates in the multi-GPU executors use closed-form
//! overlap formulas (`max(comp, comm)`); this module simulates the actual
//! event timeline — per-layer compute kernels and collectives, chunked at
//! gTask granularity — so pipelining claims can be checked rather than
//! assumed. Communication of chunk `i+1` overlaps computation of chunk `i`
//! when the schedule allows it (§5.4: operation placement at gTask
//! granularity).

/// One stage of a layer's work, split into equal chunks.
#[derive(Clone, Copy, Debug)]
pub struct StageWork {
    /// Total computation time of the stage (seconds).
    pub compute: f64,
    /// Total communication time of the stage (seconds).
    pub comm: f64,
    /// Number of chunks the stage is split into (gTask groups).
    pub chunks: usize,
}

/// The simulated timeline of a pipelined stage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PipelineResult {
    /// End-to-end makespan (seconds).
    pub makespan: f64,
    /// Time the compute engine sat idle waiting for data.
    pub compute_idle: f64,
    /// Time the link sat idle.
    pub link_idle: f64,
}

impl PipelineResult {
    /// Reports the simulated timeline into a counter registry as
    /// `sim.<prefix>.*` gauges. Simulated seconds are
    /// [`Class::Work`](wisegraph_obs::Class::Work) — they come from the
    /// deterministic event model, not from a wall clock.
    pub fn record_counters(&self, c: &mut wisegraph_obs::Counters, prefix: &str) {
        use wisegraph_obs::Class;
        c.set_gauge(format!("sim.{prefix}.makespan_s"), self.makespan, Class::Work);
        c.set_gauge(
            format!("sim.{prefix}.compute_idle_s"),
            self.compute_idle,
            Class::Work,
        );
        c.set_gauge(format!("sim.{prefix}.link_idle_s"), self.link_idle, Class::Work);
    }
}

/// Simulates a communicate-then-compute pipeline: chunk `i` must be
/// received before it is computed; the link and the compute engine are
/// independent resources.
///
/// # Panics
///
/// Panics if `chunks == 0`.
pub fn simulate_recv_compute(stage: &StageWork) -> PipelineResult {
    let _sp = wisegraph_obs::span!("sim.recv_compute", chunks = stage.chunks);
    assert!(stage.chunks > 0, "need at least one chunk");
    let n = stage.chunks;
    let comm_chunk = stage.comm / n as f64;
    let comp_chunk = stage.compute / n as f64;
    let mut link_free = 0.0f64;
    let mut compute_free = 0.0f64;
    let mut compute_busy = 0.0f64;
    let mut link_busy = 0.0f64;
    for _ in 0..n {
        // Receive the chunk.
        let recv_start = link_free;
        let recv_end = recv_start + comm_chunk;
        link_free = recv_end;
        link_busy += comm_chunk;
        // Compute once both the engine and the data are ready.
        let start = recv_end.max(compute_free);
        compute_free = start + comp_chunk;
        compute_busy += comp_chunk;
    }
    let makespan = compute_free.max(link_free);
    PipelineResult {
        makespan,
        compute_idle: makespan - compute_busy,
        link_idle: makespan - link_busy,
    }
}

/// Simulates a compute-then-send pipeline (operation placement swapped:
/// partial results are sent as they are produced).
///
/// # Panics
///
/// Panics if `chunks == 0`.
pub fn simulate_compute_send(stage: &StageWork) -> PipelineResult {
    // Symmetric: swap the roles of the resources.
    let swapped = StageWork {
        compute: stage.comm,
        comm: stage.compute,
        chunks: stage.chunks,
    };
    let r = simulate_recv_compute(&swapped);
    PipelineResult {
        makespan: r.makespan,
        compute_idle: r.link_idle,
        link_idle: r.compute_idle,
    }
}

/// Simulates a multi-layer training step where each layer's communication
/// can overlap the previous layer's computation tail.
pub fn simulate_layers(stages: &[StageWork]) -> PipelineResult {
    let _sp = wisegraph_obs::span!("sim.layers", stages = stages.len());
    let mut link_free = 0.0f64;
    let mut compute_free = 0.0f64;
    let mut compute_busy = 0.0;
    let mut link_busy = 0.0;
    for stage in stages {
        let n = stage.chunks.max(1);
        let comm_chunk = stage.comm / n as f64;
        let comp_chunk = stage.compute / n as f64;
        for _ in 0..n {
            let recv_end = link_free + comm_chunk;
            link_free = recv_end;
            link_busy += comm_chunk;
            let start = recv_end.max(compute_free);
            compute_free = start + comp_chunk;
            compute_busy += comp_chunk;
        }
        // A layer's outputs must exist before the next layer communicates.
        link_free = link_free.max(compute_free - stage.compute / n as f64);
    }
    let makespan = compute_free.max(link_free);
    PipelineResult {
        makespan,
        compute_idle: makespan - compute_busy,
        link_idle: makespan - link_busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_chunk_is_fully_serial() {
        let r = simulate_recv_compute(&StageWork {
            compute: 2.0,
            comm: 3.0,
            chunks: 1,
        });
        assert!((r.makespan - 5.0).abs() < 1e-9);
    }

    #[test]
    fn many_chunks_approach_full_overlap() {
        let stage = |chunks| StageWork {
            compute: 2.0,
            comm: 3.0,
            chunks,
        };
        let serial = simulate_recv_compute(&stage(1)).makespan;
        let pipelined = simulate_recv_compute(&stage(64)).makespan;
        // Lower bound: max + one chunk of the other resource.
        assert!(pipelined < serial);
        assert!(pipelined >= 3.0);
        assert!(
            pipelined < 3.0 + 2.0 / 32.0 + 1e-9,
            "pipelined {pipelined}"
        );
    }

    #[test]
    fn makespan_decreases_monotonically_with_chunking() {
        let mut last = f64::INFINITY;
        for chunks in [1usize, 2, 4, 8, 16, 64] {
            let r = simulate_recv_compute(&StageWork {
                compute: 1.7,
                comm: 2.3,
                chunks,
            });
            assert!(r.makespan <= last + 1e-12, "chunks {chunks}");
            last = r.makespan;
        }
    }

    #[test]
    fn idle_accounting_is_consistent() {
        let r = simulate_recv_compute(&StageWork {
            compute: 2.0,
            comm: 3.0,
            chunks: 8,
        });
        assert!((r.makespan - (2.0 + r.compute_idle)).abs() < 1e-9);
        assert!((r.makespan - (3.0 + r.link_idle)).abs() < 1e-9);
        let mut c = wisegraph_obs::Counters::new();
        r.record_counters(&mut c, "step");
        assert_eq!(c.gauge("sim.step.makespan_s"), Some(r.makespan));
        assert_eq!(c.gauge("sim.step.link_idle_s"), Some(r.link_idle));
    }

    #[test]
    fn compute_send_mirrors_recv_compute() {
        let a = simulate_recv_compute(&StageWork {
            compute: 2.0,
            comm: 3.0,
            chunks: 16,
        });
        let b = simulate_compute_send(&StageWork {
            compute: 3.0,
            comm: 2.0,
            chunks: 16,
        });
        assert!((a.makespan - b.makespan).abs() < 1e-9);
    }

    #[test]
    fn layer_sequence_bounds() {
        let stages = vec![
            StageWork {
                compute: 1.0,
                comm: 2.0,
                chunks: 8,
            },
            StageWork {
                compute: 2.0,
                comm: 1.0,
                chunks: 8,
            },
        ];
        let r = simulate_layers(&stages);
        let serial: f64 = stages.iter().map(|s| s.compute + s.comm).sum();
        let lower = stages
            .iter()
            .map(|s| s.compute)
            .sum::<f64>()
            .max(stages.iter().map(|s| s.comm).sum::<f64>());
        assert!(r.makespan <= serial + 1e-9);
        assert!(r.makespan >= lower - 1e-9);
    }

    #[test]
    fn validates_the_algebraic_overlap_formula() {
        // The executors' closed-form `max(comp, comm)` is the chunked
        // pipeline's limit; the simulation quantifies the finite-chunk gap.
        let stage = StageWork {
            compute: 4.0,
            comm: 5.0,
            chunks: 32,
        };
        let r = simulate_recv_compute(&stage);
        let algebraic = stage.compute.max(stage.comm);
        let gap = (r.makespan - algebraic) / algebraic;
        assert!(gap >= 0.0);
        assert!(gap < 0.05, "finite-chunk gap {gap}");
    }
}
