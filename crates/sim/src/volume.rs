//! Shared Figure-11 placement-volume arithmetic.
//!
//! Both multi-device stories — the closed-form cost model
//! (`wisegraph-core`'s `multi` module, Table 2 / Figure 20) and the real
//! sharded executor's placement selector — price the same four candidate
//! schedules from the same three quantities: the per-device remote-unique
//! source count, the vertex count, and the layer's embedding widths. This
//! module is the single home of that arithmetic, so predicted and executed
//! placement decisions cannot drift apart.

use crate::fabric::Fabric;

/// Bytes per f32 element.
const F32: f64 = 4.0;

/// The executable placement schedules of §5.4 / Figure 11 (plus the
/// NeutronTP-style tensor-parallel split, PAPERS.md).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PlacementKind {
    /// Communicate-then-compute: all-to-all of the unique remote *input*
    /// embeddings (`remote × f_in`), then each device aggregates its own
    /// destinations (Fig. 11b).
    DataParallel,
    /// Project-then-communicate: the projection runs on the data's home
    /// device and the *projected* embeddings travel (`remote × f_out`) —
    /// wins when volume shrinks at the embedding dimension (Fig. 11c).
    ProjectThenCommunicate,
    /// Compute-then-reduce: every device aggregates the edges whose
    /// sources it holds, partial aggregates reduce-scatter at the output
    /// volume (`V × f_out`) — wins when volume shrinks at the vertex
    /// dimension (Fig. 11d).
    ComputeThenReduce,
    /// Tensor parallelism: the hidden dimension is split, every device
    /// runs all edges on its column slice, and the accumulator
    /// all-gathers (`V × acc_width`). No graph-partition skew by
    /// construction.
    TensorParallel,
}

impl PlacementKind {
    /// All placements, in the canonical order.
    pub const ALL: [PlacementKind; 4] = [
        PlacementKind::DataParallel,
        PlacementKind::ProjectThenCommunicate,
        PlacementKind::ComputeThenReduce,
        PlacementKind::TensorParallel,
    ];

    /// Stable lower-case name for tables and counters.
    pub fn name(self) -> &'static str {
        match self {
            PlacementKind::DataParallel => "data_parallel",
            PlacementKind::ProjectThenCommunicate => "project_then_communicate",
            PlacementKind::ComputeThenReduce => "compute_then_reduce",
            PlacementKind::TensorParallel => "tensor_parallel",
        }
    }
}

/// The communication payloads (bytes) of each placement candidate for one
/// layer, before any fabric pricing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlacementVolumes {
    /// All-to-all payload of [`PlacementKind::DataParallel`]:
    /// `remote × f_in` floats.
    pub input_side: f64,
    /// All-to-all payload of [`PlacementKind::ProjectThenCommunicate`]:
    /// `remote × f_out` floats.
    pub projected_side: f64,
    /// Reduce-scatter payload of [`PlacementKind::ComputeThenReduce`]:
    /// `V × f_out` floats.
    pub output_side: f64,
    /// All-gather payload of [`PlacementKind::TensorParallel`]:
    /// `V × acc_width` floats, where `acc_width` is the width of the
    /// reduction accumulator the column split divides.
    pub gathered_side: f64,
}

impl PlacementVolumes {
    /// Builds the candidate volumes from the sharding quantities:
    /// `remote` is the (maximum per-device) remote-unique source count,
    /// `v` the vertex count, and `acc_width` the reduction accumulator
    /// width (`f_in` for gather-then-project models, `f_out` for models
    /// projecting inside the aggregation).
    pub fn new(remote: usize, v: usize, f_in: usize, f_out: usize, acc_width: usize) -> Self {
        let (remote, v) = (remote as f64, v as f64);
        Self {
            input_side: remote * f_in as f64 * F32,
            projected_side: remote * f_out as f64 * F32,
            output_side: v * f_out as f64 * F32,
            gathered_side: v * acc_width as f64 * F32,
        }
    }

    /// The payload of one placement.
    pub fn payload(&self, p: PlacementKind) -> f64 {
        match p {
            PlacementKind::DataParallel => self.input_side,
            PlacementKind::ProjectThenCommunicate => self.projected_side,
            PlacementKind::ComputeThenReduce => self.output_side,
            PlacementKind::TensorParallel => self.gathered_side,
        }
    }

    /// Fabric-priced communication time of one placement.
    pub fn comm_time(&self, p: PlacementKind, fabric: &Fabric) -> f64 {
        match p {
            PlacementKind::DataParallel => fabric.all_to_all(self.input_side),
            PlacementKind::ProjectThenCommunicate => {
                fabric.all_to_all(self.projected_side)
            }
            PlacementKind::ComputeThenReduce => fabric.reduce_scatter(self.output_side),
            PlacementKind::TensorParallel => fabric.all_gather(self.gathered_side),
        }
    }

    /// The cheapest placement among `candidates` under `fabric`, with its
    /// priced communication time. Ties break toward the earlier candidate,
    /// so selection is deterministic for any candidate order.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn best(
        &self,
        candidates: &[PlacementKind],
        fabric: &Fabric,
    ) -> (PlacementKind, f64) {
        assert!(!candidates.is_empty(), "no placement candidates");
        let mut best = (candidates[0], self.comm_time(candidates[0], fabric));
        for &c in &candidates[1..] {
            let t = self.comm_time(c, fabric);
            if t < best.1 {
                best = (c, t);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volumes_match_figure11_formulas() {
        let v = PlacementVolumes::new(100, 1000, 64, 16, 64);
        assert_eq!(v.input_side, 100.0 * 64.0 * 4.0);
        assert_eq!(v.projected_side, 100.0 * 16.0 * 4.0);
        assert_eq!(v.output_side, 1000.0 * 16.0 * 4.0);
        assert_eq!(v.gathered_side, 1000.0 * 64.0 * 4.0);
    }

    #[test]
    fn best_picks_the_shrinking_side() {
        let fab = Fabric::pcie4_quad();
        // Wide input, narrow output: projecting before communicating wins
        // over shipping raw inputs.
        let v = PlacementVolumes::new(500, 600, 1024, 8, 1024);
        let (p, t) = v.best(
            &[
                PlacementKind::DataParallel,
                PlacementKind::ProjectThenCommunicate,
                PlacementKind::ComputeThenReduce,
            ],
            &fab,
        );
        assert_eq!(p, PlacementKind::ProjectThenCommunicate);
        assert!(t < v.comm_time(PlacementKind::DataParallel, &fab));
        // Narrow input: shipping inputs wins.
        let v = PlacementVolumes::new(500, 600, 8, 1024, 8);
        let (p, _) = v.best(&PlacementKind::ALL, &fab);
        assert_eq!(p, PlacementKind::DataParallel);
    }

    #[test]
    fn ties_break_toward_earlier_candidate() {
        let fab = Fabric::pcie4_quad();
        let v = PlacementVolumes::new(0, 0, 4, 4, 4);
        let (p, _) = v.best(&PlacementKind::ALL, &fab);
        assert_eq!(p, PlacementKind::DataParallel);
    }
}
