//! Multi-device interconnect and collective-communication cost model.
//!
//! The paper's multi-GPU testbed is 4× A100 over PCIe 4.0 with NCCL (§7.2).
//! Operation placement (§5.4) reasons about whether to communicate an
//! operation's input or its output, so all it needs from the fabric is the
//! relative cost of collectives as a function of payload size — standard
//! ring/pairwise formulas over link bandwidth and latency.

/// A homogeneous all-to-all-connected device fabric.
#[derive(Clone, Copy, Debug)]
pub struct Fabric {
    /// Number of devices.
    pub num_devices: usize,
    /// Effective per-device link bandwidth (B/s, one direction).
    pub link_bw: f64,
    /// Per-collective base latency (s).
    pub latency: f64,
}

impl Fabric {
    /// 4× A100 over PCIe 4.0 x16 (≈ 24 GB/s effective per direction, NCCL
    /// launch overhead ≈ 20 µs).
    pub fn pcie4_quad() -> Self {
        Self {
            num_devices: 4,
            link_bw: 24.0e9,
            latency: 20.0e-6,
        }
    }

    /// All-to-all: every device exchanges `bytes_per_device` with the
    /// others; each link carries `(d-1)/d` of the payload.
    pub fn all_to_all(&self, bytes_per_device: f64) -> f64 {
        let d = self.num_devices as f64;
        if self.num_devices <= 1 {
            return 0.0;
        }
        self.latency + bytes_per_device * (d - 1.0) / d / self.link_bw
    }

    /// Ring all-reduce of a `bytes`-sized buffer replicated on all devices:
    /// `2·(d-1)/d` traversals.
    pub fn all_reduce(&self, bytes: f64) -> f64 {
        let d = self.num_devices as f64;
        if self.num_devices <= 1 {
            return 0.0;
        }
        2.0 * self.latency + 2.0 * bytes * (d - 1.0) / d / self.link_bw
    }

    /// Reduce-scatter: each device ends with `bytes / d` of the reduced
    /// buffer; one `(d-1)/d` traversal.
    pub fn reduce_scatter(&self, bytes: f64) -> f64 {
        let d = self.num_devices as f64;
        if self.num_devices <= 1 {
            return 0.0;
        }
        self.latency + bytes * (d - 1.0) / d / self.link_bw
    }

    /// All-gather of shards of total size `bytes`.
    pub fn all_gather(&self, bytes: f64) -> f64 {
        // Symmetric to reduce-scatter.
        self.reduce_scatter(bytes)
    }

    /// Point-to-point send of `bytes` to one peer.
    pub fn send(&self, bytes: f64) -> f64 {
        self.latency + bytes / self.link_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fab() -> Fabric {
        Fabric::pcie4_quad()
    }

    #[test]
    fn collectives_scale_linearly_in_payload() {
        let f = fab();
        let small = f.all_to_all(1e6);
        let big = f.all_to_all(1e9);
        let ratio = (big - f.latency) / (small - f.latency);
        assert!((ratio - 1000.0).abs() < 1.0);
    }

    #[test]
    fn all_reduce_costs_twice_reduce_scatter() {
        let f = fab();
        let bytes = 1e8;
        let ar = f.all_reduce(bytes) - 2.0 * f.latency;
        let rs = f.reduce_scatter(bytes) - f.latency;
        assert!((ar - 2.0 * rs).abs() / ar < 1e-9);
    }

    #[test]
    fn single_device_is_free() {
        let f = Fabric {
            num_devices: 1,
            ..fab()
        };
        assert_eq!(f.all_to_all(1e9), 0.0);
        assert_eq!(f.all_reduce(1e9), 0.0);
        assert_eq!(f.reduce_scatter(1e9), 0.0);
    }

    #[test]
    fn communication_is_much_slower_than_hbm() {
        // The premise of operation placement: link bandwidth << memory
        // bandwidth, so communication volume dominates placement choices.
        let f = fab();
        let hbm = 1.555e12;
        assert!(f.link_bw < hbm / 50.0);
    }

    #[test]
    fn latency_floors_small_messages() {
        let f = fab();
        assert!(f.send(1.0) >= f.latency);
        assert!(f.all_to_all(8.0) >= f.latency);
    }
}
