//! Single-device roofline model.
//!
//! Kernel time = launch latency + max(compute time, memory time), where the
//! effective compute throughput and memory bandwidth depend on how the
//! kernel was generated:
//!
//! - *edge-wise* kernels (one edge per thread group, no batching) reach only
//!   a few percent of peak — the paper measures graph-centric MLP at 1% of
//!   peak GPU performance (§2.2, footnote 1);
//! - *batched* kernels improve with the batch size `k` and switch to tensor
//!   cores once tiles are large enough (Figure 10c, Figure 18);
//! - *dense* kernels (tensor-centric GEMMs) run near library efficiency but
//!   pay full memory traffic for materialized per-edge tensors (§2.2).

/// How a kernel's inner computation is organized.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ComputeClass {
    /// Pure data movement (gather/scatter, no arithmetic to speak of).
    Memory {
        /// `true` when accesses follow sorted/contiguous indices.
        coalesced: bool,
    },
    /// Element-wise arithmetic (additions, activations).
    Elementwise,
    /// Edge-by-edge vector–matrix work, no data batching (Figure 10b).
    EdgeWise,
    /// Matrix–matrix work on a batch of `k` rows sharing operands
    /// (Figure 10c).
    Batched {
        /// Rows batched per task.
        k: usize,
    },
    /// A large dense GEMM (tensor-centric neural op).
    DenseMatmul,
    /// Sequential recurrence (LSTM): limited parallelism in the time
    /// dimension but dense math per step.
    Recurrent {
        /// Sequences batched together per task: the gate computations of a
        /// batch run as one `[batch, 4H]` matmul, so efficiency grows with
        /// the batch (Figure 18b).
        batch: usize,
    },
}

/// The cost signature of one generated kernel.
#[derive(Clone, Copy, Debug)]
pub struct KernelCost {
    /// Floating-point operations.
    pub flops: f64,
    /// Bytes moved through global memory.
    pub bytes: f64,
    /// Independent work units available to fill SMs (gTasks, rows, tiles).
    pub parallel_tasks: f64,
    /// Computation organization.
    pub class: ComputeClass,
}

/// An A100-like device specification.
#[derive(Clone, Copy, Debug)]
pub struct DeviceSpec {
    /// Peak FP32 throughput on CUDA cores (FLOP/s).
    pub cuda_flops: f64,
    /// Peak TF32 throughput on tensor cores (FLOP/s).
    pub tensor_flops: f64,
    /// Peak HBM bandwidth (B/s).
    pub mem_bw: f64,
    /// Kernel launch latency (s).
    pub launch_latency: f64,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Concurrent thread blocks each SM can host (occupancy target).
    pub blocks_per_sm: usize,
    /// Device memory capacity (bytes).
    pub mem_capacity: f64,
}

impl DeviceSpec {
    /// NVIDIA A100-PCIe (40 GB) — the paper's evaluation GPU.
    pub fn a100_pcie() -> Self {
        Self {
            cuda_flops: 19.5e12,
            tensor_flops: 156.0e12,
            mem_bw: 1.555e12,
            launch_latency: 5.0e-6,
            num_sms: 108,
            blocks_per_sm: 8,
            mem_capacity: 40.0e9,
        }
    }

    /// NVIDIA V100 (16 GB): no TF32 tensor cores (FP16 TCs modeled at
    /// their effective mixed-precision training rate), less bandwidth and
    /// memory — the generation before the paper's testbed.
    pub fn v100() -> Self {
        Self {
            cuda_flops: 15.7e12,
            tensor_flops: 62.0e12,
            mem_bw: 0.9e12,
            launch_latency: 6.0e-6,
            num_sms: 80,
            blocks_per_sm: 8,
            mem_capacity: 16.0e9,
        }
    }

    /// NVIDIA H100-SXM (80 GB): the generation after — much higher
    /// tensor-core throughput relative to bandwidth, which shifts optimal
    /// plans toward heavier batching.
    pub fn h100() -> Self {
        Self {
            cuda_flops: 67.0e12,
            tensor_flops: 495.0e12,
            mem_bw: 3.35e12,
            launch_latency: 4.0e-6,
            num_sms: 132,
            blocks_per_sm: 8,
            mem_capacity: 80.0e9,
        }
    }

    /// Effective compute throughput for a kernel (FLOP/s).
    pub fn effective_flops(&self, class: ComputeClass) -> f64 {
        match class {
            ComputeClass::Memory { .. } => self.cuda_flops * 0.5,
            ComputeClass::Elementwise => self.cuda_flops * 0.9,
            // Scalar loads, no reuse, divergent threads: ~1% of dense peak.
            ComputeClass::EdgeWise => self.tensor_flops * 0.01,
            ComputeClass::Batched { k } => {
                let k = k.max(1) as f64;
                if k >= 8.0 {
                    // Tensor-core path: saturates around tile sizes of ~64.
                    self.tensor_flops * (k / (k + 64.0))
                } else {
                    // Small batches stay on CUDA cores with partial reuse.
                    self.cuda_flops * (k / (k + 8.0))
                }
            }
            ComputeClass::DenseMatmul => self.tensor_flops * 0.70,
            ComputeClass::Recurrent { batch } => {
                // Gate matmuls over a batch of sequences: efficiency grows
                // with the batch like small GEMMs, saturating early (the
                // recurrence itself stays serial).
                let b = batch.max(1) as f64;
                self.cuda_flops * 0.8 * (b / (b + 16.0))
            }
        }
    }

    /// Effective memory bandwidth for a kernel (B/s).
    ///
    /// Kernel byte counts are *demand-based* (per-edge gathers count their
    /// full demand), so these factors model coalescing quality only.
    pub fn effective_bw(&self, class: ComputeClass) -> f64 {
        let eff = match class {
            ComputeClass::Memory { coalesced: true } => 0.65,
            ComputeClass::Memory { coalesced: false } => 0.45,
            ComputeClass::Elementwise => 0.85,
            ComputeClass::EdgeWise => 0.35,
            ComputeClass::Batched { k } => {
                // Batched gathers coalesce better as k grows.
                0.35 + 0.30 * (k.max(1) as f64 / (k.max(1) as f64 + 32.0))
            }
            ComputeClass::DenseMatmul => 0.85,
            ComputeClass::Recurrent { .. } => 0.45,
        };
        self.mem_bw * eff
    }

    /// Occupancy factor: fraction of the device the kernel can fill.
    pub fn occupancy(&self, parallel_tasks: f64) -> f64 {
        let slots = (self.num_sms * self.blocks_per_sm) as f64;
        (parallel_tasks / slots).min(1.0).max(1.0 / slots)
    }

    /// Estimated execution time of one kernel (seconds).
    pub fn kernel_time(&self, k: &KernelCost) -> f64 {
        let occ = self.occupancy(k.parallel_tasks);
        let compute = k.flops / (self.effective_flops(k.class) * occ);
        let memory = k.bytes / (self.effective_bw(k.class) * occ);
        self.launch_latency + compute.max(memory)
    }

    /// Estimated time for a sequence of kernels launched back to back.
    pub fn kernels_time(&self, kernels: &[KernelCost]) -> f64 {
        kernels.iter().map(|k| self.kernel_time(k)).sum()
    }

    /// The theoretically optimal time for a workload: balanced roofline at
    /// full peak (used as the "Optimal" line of Figure 3a).
    pub fn optimal_time(&self, flops: f64, bytes: f64) -> f64 {
        (flops / self.tensor_flops).max(bytes / self.mem_bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::a100_pcie()
    }

    #[test]
    fn edgewise_mlp_is_about_one_percent_of_peak() {
        // Paper §2.2: graph-centric MLP reaches ~1% of peak GPU performance.
        let d = dev();
        let ratio = d.effective_flops(ComputeClass::EdgeWise) / d.tensor_flops;
        assert!((0.005..0.02).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn batching_monotonically_improves_compute() {
        let d = dev();
        let mut last = 0.0;
        for k in [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 1024] {
            let eff = d.effective_flops(ComputeClass::Batched { k });
            assert!(eff > last, "k={k}: {eff} <= {last}");
            last = eff;
        }
        // Large-batch efficiency approaches dense-library levels.
        let big = d.effective_flops(ComputeClass::Batched { k: 1024 });
        assert!(big > 0.8 * d.effective_flops(ComputeClass::DenseMatmul));
    }

    #[test]
    fn batched_k1_is_comparable_to_edgewise() {
        let d = dev();
        let b1 = d.effective_flops(ComputeClass::Batched { k: 1 });
        let ew = d.effective_flops(ComputeClass::EdgeWise);
        // Unbatched "batched" code is no better than 2x edge-wise.
        assert!(b1 < 2.0 * ew, "b1 {b1} vs edgewise {ew}");
    }

    #[test]
    fn memory_bound_kernels_are_bw_limited() {
        let d = dev();
        // A pure gather: negligible flops, a lot of bytes.
        let k = KernelCost {
            flops: 1e6,
            bytes: 1e9,
            parallel_tasks: 1e6,
            class: ComputeClass::Memory { coalesced: false },
        };
        let t = d.kernel_time(&k);
        let expect = 1e9 / (d.mem_bw * 0.45);
        assert!((t - d.launch_latency - expect).abs() / expect < 0.05);
    }

    #[test]
    fn occupancy_penalizes_few_tasks() {
        let d = dev();
        let mk = |tasks: f64| KernelCost {
            flops: 1e9,
            bytes: 1e6,
            parallel_tasks: tasks,
            class: ComputeClass::DenseMatmul,
        };
        let few = d.kernel_time(&mk(4.0));
        let many = d.kernel_time(&mk(100_000.0));
        assert!(few > 10.0 * many, "few {few} many {many}");
    }

    #[test]
    fn launch_latency_dominates_tiny_kernels() {
        let d = dev();
        let k = KernelCost {
            flops: 100.0,
            bytes: 100.0,
            parallel_tasks: 1.0,
            class: ComputeClass::Elementwise,
        };
        let t = d.kernel_time(&k);
        assert!(t >= d.launch_latency);
        assert!(t < 2.0 * d.launch_latency);
        // Many tiny kernels pay many launches — the tensor-centric
        // fragmentation overhead.
        let many = d.kernels_time(&vec![k; 100]);
        assert!(many >= 100.0 * d.launch_latency);
    }

    #[test]
    fn optimal_time_is_a_lower_bound() {
        let d = dev();
        for class in [
            ComputeClass::EdgeWise,
            ComputeClass::Batched { k: 32 },
            ComputeClass::DenseMatmul,
            ComputeClass::Elementwise,
        ] {
            let k = KernelCost {
                flops: 1e12,
                bytes: 1e10,
                parallel_tasks: 1e6,
                class,
            };
            assert!(d.kernel_time(&k) >= d.optimal_time(k.flops, k.bytes));
        }
    }
}
