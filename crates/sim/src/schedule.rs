//! List scheduling of gTasks onto execution units.
//!
//! Models the long-tail effect of Figure 12: an overfill gTask that starts
//! late keeps one execution unit busy while the rest idle. Differentiated
//! scheduling (§6.2) raises the priority of heavy tasks (and demotes
//! edge-wise leftovers), producing a balanced makespan.

/// A schedulable unit of work.
#[derive(Clone, Copy, Debug)]
pub struct ScheduledTask {
    /// Execution time of the task on one unit (seconds).
    pub duration: f64,
    /// Higher priority starts earlier. Uniform execution uses 0 for all.
    pub priority: i32,
}

/// Greedy list schedule: tasks in priority order (stable for ties, i.e.
/// submission order), each placed on the earliest-available unit. Returns
/// the makespan (seconds).
///
/// # Panics
///
/// Panics if `units == 0`.
pub fn makespan(tasks: &[ScheduledTask], units: usize) -> f64 {
    assert!(units > 0, "need at least one execution unit");
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(tasks[i].priority));
    // Earliest-free unit via a simple min-scan (units are few: SM groups).
    let mut free_at = vec![0.0f64; units];
    for &i in &order {
        let (slot, _) = free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
            .expect("units > 0");
        free_at[slot] += tasks[i].duration;
    }
    free_at.into_iter().fold(0.0, f64::max)
}

/// Uniform execution: all tasks at equal priority, submission order.
pub fn makespan_uniform(durations: &[f64], units: usize) -> f64 {
    let tasks: Vec<ScheduledTask> = durations
        .iter()
        .map(|&d| ScheduledTask {
            duration: d,
            priority: 0,
        })
        .collect();
    makespan(&tasks, units)
}

/// Differentiated execution: longest tasks first (overfill gTasks get
/// priority, §6.2), matching the "increase the priority of execution for
/// overfill gTasks" rule.
pub fn makespan_longest_first(durations: &[f64], units: usize) -> f64 {
    let mut order: Vec<usize> = (0..durations.len()).collect();
    order.sort_by(|&a, &b| durations[b].partial_cmp(&durations[a]).expect("finite"));
    let tasks: Vec<ScheduledTask> = order
        .iter()
        .enumerate()
        .map(|(rank, &i)| ScheduledTask {
            duration: durations[i],
            priority: -(rank as i32),
        })
        .collect();
    makespan(&tasks, units)
}

/// Lower bound on any schedule: max(total/units, longest task).
pub fn makespan_lower_bound(durations: &[f64], units: usize) -> f64 {
    let total: f64 = durations.iter().sum();
    let longest = durations.iter().copied().fold(0.0, f64::max);
    (total / units as f64).max(longest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_unit_sums_durations() {
        let d = [1.0, 2.0, 3.0];
        assert_eq!(makespan_uniform(&d, 1), 6.0);
    }

    #[test]
    fn balanced_tasks_divide_evenly() {
        let d = vec![1.0; 16];
        let m = makespan_uniform(&d, 4);
        assert!((m - 4.0).abs() < 1e-9);
    }

    #[test]
    fn long_tail_from_late_heavy_task() {
        // 15 small tasks then one huge one: uniform order starts the huge
        // task last → long tail. Longest-first fixes it.
        let mut d = vec![1.0; 15];
        d.push(10.0);
        let uniform = makespan_uniform(&d, 4);
        let diff = makespan_longest_first(&d, 4);
        assert!(uniform > diff, "uniform {uniform} vs differentiated {diff}");
        assert!((diff - makespan_lower_bound(&d, 4)).abs() < 1e-6);
    }

    #[test]
    fn lower_bound_holds() {
        let d = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        for units in 1..6 {
            let lb = makespan_lower_bound(&d, units);
            assert!(makespan_uniform(&d, units) >= lb - 1e-9);
            assert!(makespan_longest_first(&d, units) >= lb - 1e-9);
        }
    }

    #[test]
    fn priorities_control_start_order() {
        // Two units; a low-priority long task and high-priority short ones.
        let tasks = vec![
            ScheduledTask {
                duration: 8.0,
                priority: -1,
            },
            ScheduledTask {
                duration: 4.0,
                priority: 1,
            },
            ScheduledTask {
                duration: 4.0,
                priority: 1,
            },
            ScheduledTask {
                duration: 4.0,
                priority: 1,
            },
        ];
        // High-priority shorts fill both units (4+4, 4), the long task then
        // lands on the unit free at t=4 → makespan 12.
        assert_eq!(makespan(&tasks, 2), 12.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_units_panics() {
        makespan_uniform(&[1.0], 0);
    }
}
