//! `wisegraph` — command-line front end to the optimizer.
//!
//! ```text
//! wisegraph generate --vertices 50000 --edges 600000 --types 8 --out g.bin
//! wisegraph partition g.bin --table src-type --k 64
//! wisegraph optimize g.bin --model rgcn --features 128 --classes 40
//! wisegraph datasets
//! ```

use std::process::ExitCode;
use wisegraph::baselines::{Baseline, LayerDims};
use wisegraph::core::WiseGraph;
use wisegraph::graph::generate::{rmat, RmatParams};
use wisegraph::graph::{io, DatasetKind, Graph};
use wisegraph::gtask::{partition, PartitionTable};
use wisegraph::models::ModelKind;
use wisegraph::sim::DeviceSpec;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  wisegraph generate --vertices N --edges M [--types T] [--seed S] --out PATH\n  \
         wisegraph partition PATH [--table vertex|edge|2d|src-type|dst-mindeg|edge-batch] [--k K]\n  \
         wisegraph optimize PATH --model gcn|sage|sage-lstm|gat|rgcn [--features F] [--hidden H] [--classes C]\n  \
         wisegraph datasets"
    );
    ExitCode::FAILURE
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_num<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    flag(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn load_graph(path: &str) -> Result<Graph, ExitCode> {
    io::load(path).map_err(|e| {
        eprintln!("error: cannot load graph from {path}: {e}");
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    match command.as_str() {
        "generate" => {
            let v = flag_num(&args, "--vertices", 10_000usize);
            let e = flag_num(&args, "--edges", 100_000usize);
            let t = flag_num(&args, "--types", 1usize);
            let seed = flag_num(&args, "--seed", 42u64);
            let Some(out) = flag(&args, "--out") else {
                eprintln!("error: --out PATH is required");
                return usage();
            };
            let g = rmat(&RmatParams::standard(v, e, seed).with_edge_types(t));
            if let Err(err) = io::save(&g, &out) {
                eprintln!("error: cannot write {out}: {err}");
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {out}: {} vertices, {} edges, {} types",
                g.num_vertices(),
                g.num_edges(),
                g.num_edge_types()
            );
            ExitCode::SUCCESS
        }
        "partition" => {
            let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
                return usage();
            };
            let g = match load_graph(path) {
                Ok(g) => g,
                Err(c) => return c,
            };
            let k = flag_num(&args, "--k", 64u64);
            let table = match flag(&args, "--table").as_deref().unwrap_or("vertex") {
                "vertex" => PartitionTable::vertex_centric(),
                "edge" => PartitionTable::edge_centric(),
                "2d" => PartitionTable::two_d(k),
                "src-type" => PartitionTable::src_batch_per_type(k),
                "dst-mindeg" => PartitionTable::dst_batch_min_degree(k),
                "edge-batch" => PartitionTable::edge_batch(k),
                other => {
                    eprintln!("error: unknown table '{other}'");
                    return usage();
                }
            };
            let plan = partition(&g, &table);
            println!("table:        {}", plan.table);
            println!("gTasks:       {}", plan.num_tasks());
            println!("median edges: {}", plan.median_task_edges());
            println!("max edges:    {}", plan.max_task_edges());
            ExitCode::SUCCESS
        }
        "optimize" => {
            let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
                return usage();
            };
            let g = match load_graph(path) {
                Ok(g) => g,
                Err(c) => return c,
            };
            let model = match flag(&args, "--model").as_deref().unwrap_or("gcn") {
                "gcn" => ModelKind::Gcn,
                "sage" => ModelKind::Sage,
                "sage-lstm" => ModelKind::SageLstm,
                "gat" => ModelKind::Gat,
                "rgcn" => ModelKind::Rgcn,
                other => {
                    eprintln!("error: unknown model '{other}'");
                    return usage();
                }
            };
            let dims = LayerDims {
                f_in: flag_num(&args, "--features", 128usize),
                hidden: flag_num(&args, "--hidden", 256usize),
                classes: flag_num(&args, "--classes", 40usize),
                layers: flag_num(&args, "--layers", 3usize),
            };
            let device = DeviceSpec::a100_pcie();
            let wg = WiseGraph::new(device);
            let out = wg.optimize(&g, model, &dims);
            println!("model:        {}", model.name());
            println!("graph plan:   {}", out.per_layer[0].table);
            println!("op partition: {:?}", out.per_layer[0].op_partition);
            println!(
                "gTasks:       {} (batch {} rows)",
                out.per_layer[0].partition.num_tasks(),
                out.per_layer[0].ctx.batch_rows
            );
            println!(
                "iteration:    {:.3} ms{}",
                out.time_per_iter * 1e3,
                if out.oom { "  [exceeds device memory]" } else { "" }
            );
            for b in Baseline::columns_for(model) {
                let est = b.estimate(&g, model, &dims, &device);
                println!(
                    "  vs {:<10} {:>10.3} ms{}",
                    b.label(model),
                    est.time_per_iter * 1e3,
                    if est.oom { "  [OOM]" } else { "" }
                );
            }
            let s = wg.stats();
            println!(
                "search:       {} evaluated, {} pruned, {} cache hits",
                s.evaluated, s.pruned, s.cache_hits
            );
            ExitCode::SUCCESS
        }
        "datasets" => {
            println!(
                "{:<6} {:>12} {:>14} {:>10} {:>8} {:>6}",
                "name", "paper |V|", "paper |E|", "gen |V|", "gen |E|", "dim"
            );
            for kind in DatasetKind::ALL {
                let s = kind.spec();
                println!(
                    "{:<6} {:>12} {:>14} {:>10} {:>8} {:>6}",
                    kind.short_name(),
                    s.paper_vertices,
                    s.paper_edges,
                    s.gen_vertices,
                    s.gen_edges,
                    s.feature_dim
                );
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
