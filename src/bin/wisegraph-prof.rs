//! `wisegraph-prof`: the workload profiler and counter-regression gate.
//!
//! Runs one layer of each built-in model (GCN, RGCN, GAT, SAGE) under
//! every compatible partition table on a fixed synthetic RMAT graph,
//! with full observability enabled, and emits:
//!
//! * `results/prof_<model>.json` — the deterministic work/resource
//!   counters of that model's runs (`wisegraph-obs` metrics JSON);
//! * `results/prof_trace.json` — the merged span timeline in Chrome
//!   trace-event format (open in `chrome://tracing` or Perfetto);
//! * `results/BENCH_executor.json` — wall-clock medians per model ×
//!   table in the `testkit::bench` report shape (timing is an *overlay*:
//!   informative, never compared); each combination appears twice, as
//!   `<table>` (default `Auto` engine, fused kernels where the cost rule
//!   fires) and `<table>_interp` (interpreter pinned on), recording the
//!   fused-codegen before/after;
//! * a per-gTask workload-skew table on stdout — the paper's Figure 7/15
//!   story of how each table reshapes where the edges land — plus a
//!   fused-vs-interpreter speedup table from the timing twins;
//! * a cold-vs-warm planning table from the content-addressed
//!   [`PlanCache`]: per model, one timing twin pair (`planning_cold`,
//!   `planning_warm`) covering partition + transform + compile, and the
//!   cache's Resource-class hit/miss/hit-rate counters under
//!   `planning.<model>.` — deterministic, so the baseline gate holds the
//!   warm path to a 100% hit rate;
//! * a shadow-sanitizer accounting section: per model, the first
//!   compatible table executes once under `ExecMode::Sanitize`, and the
//!   sanitizer's Resource-class counters (cells tracked, writes checked,
//!   shared accumulator cells, conflicts) land under `sanitize.<model>.`
//!   in the baseline (DESIGN.md §12);
//! * a sharded multi-device section (DESIGN.md §13): per model, the
//!   vertex-centric plan runs on a [`SHARD_DEVICES`]-device
//!   [`ClusterEngine`] under every compatible placement schedule; the
//!   per-device work counters and `comm.*` exchange totals land under
//!   `sharded.<model>.<placement>.`, stdout gets a device-skew /
//!   comm-volume table (tensor parallelism balances work where the halo
//!   schedules inherit the shard's edge imbalance) and an
//!   optimizer-selected-vs-data-parallel speedup table (the selection is
//!   asserted never slower).
//!
//! * a critical-path attribution section (DESIGN.md §14): per model, the
//!   vertex-centric plan runs at 2 and 4 devices under every compatible
//!   placement, and the causal replay folds each run's device timelines
//!   and send→receive edges into a critical path, a per-device
//!   busy/exchange/idle breakdown, a straggler ranking, and per-layer
//!   overlap headroom; the Work-class part lands in the baseline under
//!   `critical.<model>.<placement>.d<devices>.`, and with
//!   `--critical-path` the tables print and the deterministic report is
//!   written to `results/prof_critical.json`.
//!
//! Modes:
//!
//! * `--check` — regression gate for `scripts/verify.sh`: re-runs the
//!   suite and asserts (a) counter snapshots are bit-identical across
//!   two consecutive runs, (b) `Work`-class counters are bit-identical
//!   across 1/2/4 engine threads, and (c) counters match
//!   `results/prof_baseline.json` within the per-class tolerance bands
//!   (`Work` exact, `Resource` within [`RESOURCE_BAND`]);
//! * `--write-baseline` — rewrites `results/prof_baseline.json` from the
//!   current run (commit the result deliberately);
//! * `--critical-path` — prints the attribution tables and writes
//!   `results/prof_critical.json` (Work-class view, byte-stable).

use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::process::ExitCode;
use wisegraph::cache::PlanCache;
use wisegraph::core::sharded::{device_work_skew, select_placement};
use wisegraph::kernels::cluster::compatible_placements;
use wisegraph::kernels::ClusterEngine;
use wisegraph::sim::{Fabric, PlacementKind};
use wisegraph::graph::generate::{rmat, RmatParams};
use wisegraph::graph::Graph;
use wisegraph::gtask::{partition, PartitionPlan, PartitionTable};
use wisegraph::kernels::engine::{Engine, ExecMode};
use wisegraph::kernels::micro::compile;
use wisegraph::kernels::micro::plan_is_dst_complete;
use wisegraph::models::ModelKind;
use wisegraph::obs::clock::Stopwatch;
use wisegraph::obs::json::Json;
use wisegraph::obs::{
    capture, counters_from_json, counters_to_json, trace_to_chrome_json,
    AttributionReport, Class, Counters,
};
use wisegraph::tensor::{init, Tensor};

/// Engine worker-slot count for the emitted artifacts and the baseline.
const PROFILE_THREADS: usize = 2;

/// Thread counts the `Work`-invariance gate runs at.
const CHECK_THREADS: [usize; 3] = [1, 2, 4];

/// Wall-clock repetitions per model × table for `BENCH_executor.json`.
const TIMING_REPS: usize = 5;

/// Relative tolerance band for `Resource`-class counters in `--check`.
/// They are deterministic at a fixed thread count, but the band keeps the
/// gate from blocking legitimate pool-behavior changes on noise-free but
/// incidental values (e.g. one extra warm-up buffer).
const RESOURCE_BAND: f64 = 0.25;

/// Layer feature sizes (input, output) — same as `wisegraph-lint`.
const DIMS: (usize, usize) = (8, 6);

/// Simulated device count for the sharded multi-device section.
const SHARD_DEVICES: usize = 4;

/// Device counts the critical-path attribution section runs at.
const CRITICAL_DEVICES: [usize; 2] = [2, 4];

fn models() -> [(ModelKind, &'static str); 4] {
    [
        (ModelKind::Gcn, "gcn"),
        (ModelKind::Rgcn, "rgcn"),
        (ModelKind::Gat, "gat"),
        (ModelKind::Sage, "sage"),
    ]
}

fn tables() -> Vec<(&'static str, PartitionTable)> {
    vec![
        ("vertex_centric", PartitionTable::vertex_centric()),
        ("edge_batch_64", PartitionTable::edge_batch(64)),
        ("two_d_8", PartitionTable::two_d(8)),
        ("src_batch_per_type_8", PartitionTable::src_batch_per_type(8)),
    ]
}

fn profile_graph() -> Graph {
    rmat(&RmatParams {
        num_vertices: 300,
        num_edges: 2400,
        a: 0.57,
        b: 0.19,
        c: 0.19,
        num_edge_types: 4,
        seed: 7,
    })
}

/// Every global any model layer reads; engines ignore unused entries.
fn globals_for(g: &Graph, fi: usize, fo: usize) -> HashMap<String, Tensor> {
    let mut m = HashMap::new();
    m.insert(
        "h".to_string(),
        init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 1),
    );
    m.insert(
        "W".to_string(),
        init::uniform_tensor(&[g.num_edge_types(), fi, fo], -1.0, 1.0, 2),
    );
    m.insert("w".to_string(), init::uniform_tensor(&[fi, fo], -1.0, 1.0, 3));
    m.insert(
        "w_self".to_string(),
        init::uniform_tensor(&[fi, fo], -1.0, 1.0, 4),
    );
    m.insert(
        "w_neigh".to_string(),
        init::uniform_tensor(&[fi, fo], -1.0, 1.0, 5),
    );
    m.insert(
        "a_src".to_string(),
        init::uniform_tensor(&[fo, 1], -1.0, 1.0, 6),
    );
    m.insert(
        "a_dst".to_string(),
        init::uniform_tensor(&[fo, 1], -1.0, 1.0, 7),
    );
    m
}

/// One row of the workload-skew table.
struct SkewRow {
    model: &'static str,
    table: &'static str,
    tasks: usize,
    min_edges: usize,
    median_edges: usize,
    max_edges: usize,
}

impl SkewRow {
    fn of(model: &'static str, table: &'static str, plan: &PartitionPlan) -> Self {
        let mut sizes: Vec<usize> =
            plan.tasks.iter().map(|t| t.num_edges()).collect();
        sizes.sort_unstable();
        SkewRow {
            model,
            table,
            tasks: sizes.len(),
            min_edges: sizes.first().copied().unwrap_or(0),
            median_edges: sizes.get(sizes.len() / 2).copied().unwrap_or(0),
            max_edges: sizes.last().copied().unwrap_or(0),
        }
    }

    /// Max-over-median task size: 1.0 is perfectly balanced.
    fn skew(&self) -> f64 {
        self.max_edges as f64 / self.median_edges.max(1) as f64
    }
}

/// One wall-clock record for the bench report. Each model × table gets
/// two cases: `<table>` (the default `Auto` engine, fused where the cost
/// rule fires) and `<table>_interp` (the interpreter pinned on), so the
/// bench report records the fused-vs-interpreter before/after directly.
struct TimingRec {
    group: &'static str,
    case: String,
    samples: Vec<u64>,
}

/// One sharded cluster run of the multi-device section: a model at
/// [`SHARD_DEVICES`] devices under one placement schedule.
struct ShardedRow {
    model: &'static str,
    placement: PlacementKind,
    /// Max-over-mean per-device kernel FLOPs (1.0 = perfectly balanced).
    device_skew: f64,
    /// Bytes actually moved through the collectives.
    comm_bytes: u64,
    /// Fabric-priced communication time of the placement's predicted
    /// volume (what the optimizer minimizes).
    comm_time: f64,
    /// Whether the joint optimizer selected this schedule.
    selected: bool,
}

/// One critical-path attribution run: a model's vertex-centric plan on a
/// cluster at one device count under one placement schedule.
struct CriticalRow {
    model: &'static str,
    placement: PlacementKind,
    devices: usize,
    report: AttributionReport,
}

/// Everything one suite run produces (besides the captured trace).
struct SuiteRun {
    /// Counters per model slug (keys prefixed `<table>.`).
    per_model: BTreeMap<&'static str, Counters>,
    /// All counters, keys prefixed `<model>.<table>.`.
    all: Counters,
    skew: Vec<SkewRow>,
    sharded: Vec<ShardedRow>,
    critical: Vec<CriticalRow>,
    timings: Vec<TimingRec>,
    skipped: usize,
}

/// Runs every model × compatible table once with `threads` worker slots,
/// `time_reps` extra repetitions feeding the wall-clock records.
fn run_suite(threads: usize, time_reps: usize) -> SuiteRun {
    let g = profile_graph();
    let (fi, fo) = DIMS;
    let globals = globals_for(&g, fi, fo);
    let mut run = SuiteRun {
        per_model: BTreeMap::new(),
        all: Counters::new(),
        skew: Vec::new(),
        sharded: Vec::new(),
        critical: Vec::new(),
        timings: Vec::new(),
        skipped: 0,
    };
    for (model, slug) in models() {
        let dfg = model.layer_dfg(fi, fo);
        let dst_complete_only = compile(&dfg, &g)
            .map(|p| p.requires_dst_complete)
            .unwrap_or(false);
        for (tname, table) in tables() {
            let plan = partition(&g, &table);
            if dst_complete_only && !plan_is_dst_complete(&g, &plan) {
                run.skipped += 1;
                continue;
            }
            let mut combo = Counters::new();
            plan.record_counters(&mut combo);
            let engine = Engine::new(threads);
            engine
                .execute(&dfg, &g, &plan, &globals)
                .expect("profiled combination executes");
            // Snapshot after exactly one execute, so the recorded counters
            // are independent of how many timing repetitions follow.
            combo.merge(&engine.stats());
            let mut samples = Vec::with_capacity(time_reps);
            for _ in 0..time_reps {
                let t = Stopwatch::start();
                engine
                    .execute(&dfg, &g, &plan, &globals)
                    .expect("profiled combination executes");
                samples.push(t.elapsed_ns());
            }
            run.per_model
                .entry(slug)
                .or_default()
                .merge_prefixed(tname, &combo);
            run.all.merge_prefixed(&format!("{slug}.{tname}"), &combo);
            run.skew.push(SkewRow::of(slug, tname, &plan));
            if time_reps > 0 {
                run.timings.push(TimingRec {
                    group: slug,
                    case: tname.to_string(),
                    samples,
                });
                // The interpreter-pinned twin of the same combo: its
                // counters are deliberately NOT merged (the snapshot above
                // is the baseline subject), only its wall clock is kept.
                let interp = Engine::with_mode(threads, ExecMode::Interpret);
                interp
                    .execute(&dfg, &g, &plan, &globals)
                    .expect("profiled combination executes");
                let mut isamples = Vec::with_capacity(time_reps);
                for _ in 0..time_reps {
                    let t = Stopwatch::start();
                    interp
                        .execute(&dfg, &g, &plan, &globals)
                        .expect("profiled combination executes");
                    isamples.push(t.elapsed_ns());
                }
                run.timings.push(TimingRec {
                    group: slug,
                    case: format!("{tname}_interp"),
                    samples: isamples,
                });
            }
        }
    }

    // Planning cold/warm: per model, run the three cached planning stages
    // (partition over every table, transform, compile) against a fresh
    // cache and then again against the now-warm cache. The counter part is
    // fixed at exactly one cold + one warm pass so the recorded
    // hits/misses are independent of `time_reps` (gate (a) reruns with
    // zero reps and still must match bit-exactly); the wall-clock twins
    // ride along as a Timing overlay.
    for (model, slug) in models() {
        let dfg = model.layer_dfg(fi, fo);
        let plan_all = |cache: &mut PlanCache| {
            for (_, table) in tables() {
                let _ = cache.partition_cached(&g, &table);
            }
            let t = cache.transform_cached(&g, &dfg);
            let _ = cache.compile_cached(&g, &t);
        };
        let mut cache = PlanCache::new();
        plan_all(&mut cache); // cold: every lookup misses and stores
        plan_all(&mut cache); // warm: every lookup hits and decodes
        let mut c = Counters::new();
        cache.record_counters(&mut c);
        run.all.merge_prefixed(&format!("planning.{slug}"), &c);
        if time_reps > 0 {
            let mut cold = Vec::with_capacity(time_reps);
            for _ in 0..time_reps {
                let mut fresh = PlanCache::new();
                let t = Stopwatch::start();
                plan_all(&mut fresh);
                cold.push(t.elapsed_ns());
            }
            let mut warmed = PlanCache::new();
            plan_all(&mut warmed);
            let mut warm = Vec::with_capacity(time_reps);
            for _ in 0..time_reps {
                let t = Stopwatch::start();
                plan_all(&mut warmed);
                warm.push(t.elapsed_ns());
            }
            run.timings.push(TimingRec {
                group: slug,
                case: "planning_cold".to_string(),
                samples: cold,
            });
            run.timings.push(TimingRec {
                group: slug,
                case: "planning_warm".to_string(),
                samples: warm,
            });
        }
    }

    // Sanitize shadow run: per model, the first compatible table executes
    // once under `ExecMode::Sanitize`, so the shadow-memory accounting
    // (cells tracked, writes checked, shared accumulator cells, conflicts)
    // lands in the baseline under `sanitize.<slug>.`. The sanitize keys
    // are Resource-class, so gate (b)'s Work-invariance view is
    // unaffected; at a fixed thread count they are deterministic and
    // gate (a) holds them bit-exactly.
    for (model, slug) in models() {
        let dfg = model.layer_dfg(fi, fo);
        let dst_complete_only = compile(&dfg, &g)
            .map(|p| p.requires_dst_complete)
            .unwrap_or(false);
        let Some(plan) = tables().into_iter().find_map(|(_, table)| {
            let plan = partition(&g, &table);
            (!dst_complete_only || plan_is_dst_complete(&g, &plan)).then_some(plan)
        }) else {
            continue;
        };
        let engine = Engine::with_mode(threads, ExecMode::Sanitize);
        engine
            .execute(&dfg, &g, &plan, &globals)
            .expect("sanitized combination executes");
        run.all
            .merge_prefixed(&format!("sanitize.{slug}"), &engine.stats());
    }

    // Sharded multi-device section: per model, the vertex-centric plan
    // (destination-complete, so every model can run) executes on a
    // [`SHARD_DEVICES`]-device cluster under every placement schedule the
    // compiled program supports. Each run uses a fresh [`ClusterEngine`],
    // so the merged counters — per-device `device.NN.*` work plus the
    // `comm.*` exchange totals — describe exactly one execution under
    // `sharded.<slug>.<placement>.`. The comm/work keys are Work-class
    // pure functions of (graph, plan, device count, placement): gate (a)
    // holds them bit-exactly and gate (b)'s thread sweep leaves them
    // untouched by construction.
    let fabric = Fabric::pcie4_quad();
    for (model, slug) in models() {
        let dfg = model.layer_dfg(fi, fo);
        let program = compile(&dfg, &g).expect("profiled model compiles");
        let plan = partition(&g, &PartitionTable::vertex_centric());
        let choice =
            select_placement(&program, &g, &globals, SHARD_DEVICES, &fabric, fi, fo);
        for placement in compatible_placements(&program, &g, &globals) {
            let cluster = ClusterEngine::new(SHARD_DEVICES, threads);
            let crun = cluster
                .execute_program(&program, &dfg, &g, &plan, &globals, placement)
                .expect("sharded combination executes");
            run.all.merge_prefixed(
                &format!("sharded.{slug}.{}", placement.name()),
                &cluster.stats(),
            );
            let comm_time = choice
                .candidates
                .iter()
                .find(|(p, _)| *p == placement)
                .map(|(_, t)| *t)
                .unwrap_or(f64::INFINITY);
            run.sharded.push(ShardedRow {
                model: slug,
                placement,
                device_skew: device_work_skew(&crun.per_device),
                comm_bytes: crun.exchange.bytes_sent(),
                comm_time,
                selected: placement == choice.placement,
            });
        }
    }

    // Critical-path attribution section: per model, the vertex-centric
    // plan runs at each [`CRITICAL_DEVICES`] count under every compatible
    // placement, and the causal replay ([`ClusterRun::attribution`])
    // folds the device timelines + causal edges into a critical path,
    // busy/exchange/idle breakdown, straggler ranking, and per-layer
    // overlap headroom. Only the Work-class part of the report lands in
    // `run.all` (under `critical.<slug>.<placement>.d<devices>.`): those
    // keys are pure functions of (graph, plan, placement, device count),
    // so all three gates hold them bit-exactly, while the wall-clock
    // overlay stays out of the rerun-identity comparison.
    for (model, slug) in models() {
        let dfg = model.layer_dfg(fi, fo);
        let program = compile(&dfg, &g).expect("profiled model compiles");
        let plan = partition(&g, &PartitionTable::vertex_centric());
        for devices in CRITICAL_DEVICES {
            for placement in compatible_placements(&program, &g, &globals) {
                let cluster = ClusterEngine::new(devices, threads);
                let crun = cluster
                    .execute_program(&program, &dfg, &g, &plan, &globals, placement)
                    .expect("critical-path combination executes");
                let report = crun.attribution().expect("attribution analyzes");
                let mut c = Counters::new();
                report.record_counters(&mut c);
                run.all.merge_prefixed(
                    &format!("critical.{slug}.{}.d{devices}", placement.name()),
                    &c.only(&[Class::Work]),
                );
                run.critical.push(CriticalRow {
                    model: slug,
                    placement,
                    devices,
                    report,
                });
            }
        }
    }
    run
}

/// Serializes the critical-path rows as a deterministic JSON document:
/// each row embeds the report's Work-class view only, so regenerating the
/// file on another machine (or thread count) is byte-identical.
fn critical_to_json(rows: &[CriticalRow]) -> String {
    let rows_json: Vec<Json> = rows
        .iter()
        .map(|r| {
            let mut m = std::collections::BTreeMap::new();
            m.insert("model".to_string(), Json::Str(r.model.to_string()));
            m.insert(
                "placement".to_string(),
                Json::Str(r.placement.name().to_string()),
            );
            m.insert("devices".to_string(), Json::Num(r.devices as f64));
            let report = wisegraph::obs::json::parse(&r.report.work_json())
                .expect("work_json round-trips");
            m.insert("report".to_string(), report);
            Json::Obj(m)
        })
        .collect();
    let mut doc = std::collections::BTreeMap::new();
    doc.insert(
        "schema".to_string(),
        Json::Str("wisegraph-prof-critical/v1".to_string()),
    );
    doc.insert("rows".to_string(), Json::Arr(rows_json));
    Json::Obj(doc).to_string_compact()
}

/// Rounds to two significant decimal digits (half-up), so regenerated
/// medians only change when the timing moves by more than a few percent.
fn round_sig2(v: u64) -> u64 {
    if v < 100 {
        return v;
    }
    let pow = 10u64.pow(v.ilog10() - 1);
    (v + pow / 2) / pow * pow
}

/// Serializes the wall-clock records in the `testkit::bench` report shape:
/// one record per line with `group`, `case`, `samples`, and `median_ns`
/// (the fields `multi.rs` parses). The median of the fixed
/// [`TIMING_REPS`]-sample run is rounded to two significant digits —
/// regenerating the file produces a stable diff instead of full-file
/// timing noise, while still tracking real (>few-percent) shifts.
fn timings_to_bench_json(suite: &str, recs: &[TimingRec]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\n  \"suite\": \"{suite}\",\n  \"results\": [\n"));
    for (i, r) in recs.iter().enumerate() {
        let mut s = r.samples.clone();
        s.sort_unstable();
        let median = round_sig2(s[s.len() / 2]);
        out.push_str(&format!(
            "    {{\"group\": \"{}\", \"case\": \"{}\", \"samples\": {}, \
             \"median_ns\": {}}}{}\n",
            r.group,
            r.case,
            s.len(),
            median,
            if i + 1 < recs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Compares a run's counters against the committed baseline with
/// per-class tolerance bands. Returns the violations.
fn check_against_baseline(current: &Counters, baseline: &Counters) -> Vec<String> {
    let mut errs = Vec::new();
    for (name, want) in baseline.iter() {
        let Some(got) = current.get(name) else {
            errs.push(format!("`{name}` is in the baseline but was not recorded"));
            continue;
        };
        let (w, g) = (want.value.as_f64(), got.value.as_f64());
        match want.class {
            Class::Work => {
                // Work counters are pure functions of the inputs: exact.
                if w.to_bits() != g.to_bits() {
                    errs.push(format!("`{name}` (Work): baseline {w}, got {g}"));
                }
            }
            Class::Resource => {
                let band = RESOURCE_BAND * w.abs().max(1.0);
                if (g - w).abs() > band {
                    errs.push(format!(
                        "`{name}` (Resource): baseline {w}, got {g} \
                         (band ±{band:.1})"
                    ));
                }
            }
            Class::Timing => {}
        }
    }
    errs
}

fn write(path: &Path, contents: &str) {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(path, contents)
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("wisegraph-prof: wrote {}", path.display());
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let write_baseline = args.iter().any(|a| a == "--write-baseline");
    let critical = args.iter().any(|a| a == "--critical-path");
    if let Some(a) = args
        .iter()
        .find(|a| *a != "--check" && *a != "--write-baseline" && *a != "--critical-path")
    {
        eprintln!("wisegraph-prof: unknown argument {a}");
        eprintln!("usage: wisegraph-prof [--check] [--write-baseline] [--critical-path]");
        return ExitCode::FAILURE;
    }
    let results = Path::new("results");

    // The profiled run: counters + spans captured together.
    let (run, trace) = capture(|| run_suite(PROFILE_THREADS, TIMING_REPS));
    if let Err(e) = trace.check_nesting() {
        eprintln!("wisegraph-prof: ill-nested trace: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wisegraph-prof: {} combinations ({} dst-incomplete skipped), \
         {} span events, {} counters",
        run.skew.len(),
        run.skipped,
        trace.sorted_events().len(),
        run.all.len()
    );

    // Workload-skew table (the Figure 7/15 story in numbers).
    println!("\n| model | table | gTasks | min | median | max | skew |");
    println!("|---|---|---|---|---|---|---|");
    for r in &run.skew {
        println!(
            "| {} | {} | {} | {} | {} | {} | {:.2} |",
            r.model,
            r.table,
            r.tasks,
            r.min_edges,
            r.median_edges,
            r.max_edges,
            r.skew()
        );
    }
    println!();

    // Fused-vs-interpreter wall clock: every `<table>` case against its
    // `<table>_interp` twin. Informative overlay, like all timing here —
    // the *correctness* of the fused path is gated bit-exactly by the
    // parity harness and the Work-invariance check below.
    let median = |samples: &[u64]| {
        let mut s = samples.to_vec();
        s.sort_unstable();
        s[s.len() / 2]
    };
    let mut best_speedup = 0.0f64;
    println!("| model | table | interp (ns) | fused/auto (ns) | speedup |");
    println!("|---|---|---|---|---|");
    for r in &run.timings {
        if r.case.ends_with("_interp") {
            continue;
        }
        let twin = format!("{}_interp", r.case);
        let Some(i) = run
            .timings
            .iter()
            .find(|t| t.group == r.group && t.case == twin)
        else {
            continue;
        };
        let (fm, im) = (median(&r.samples), median(&i.samples));
        let speedup = im as f64 / fm.max(1) as f64;
        best_speedup = best_speedup.max(speedup);
        println!(
            "| {} | {} | {} | {} | {:.2}x |",
            r.group, r.case, im, fm, speedup
        );
    }
    println!("\nwisegraph-prof: best fused-vs-interpreter speedup {best_speedup:.2}x\n");

    // Cold-vs-warm planning: what the content-addressed cache buys. A
    // warm lookup still decodes the stored bytes, so the speedup shown is
    // honest end-to-end reuse cost, not a pointer copy. Timing overlay —
    // the cache's *correctness* is gated by the bit-identity checks and
    // the Resource-class hit counters in the baseline.
    let mut worst_plan_speedup = f64::INFINITY;
    println!("| model | cold planning (ns) | warm planning (ns) | speedup |");
    println!("|---|---|---|---|");
    for r in &run.timings {
        if r.case != "planning_cold" {
            continue;
        }
        let Some(w) = run
            .timings
            .iter()
            .find(|t| t.group == r.group && t.case == "planning_warm")
        else {
            continue;
        };
        let (cm, wm) = (median(&r.samples), median(&w.samples));
        let speedup = cm as f64 / wm.max(1) as f64;
        worst_plan_speedup = worst_plan_speedup.min(speedup);
        println!("| {} | {} | {} | {:.2}x |", r.group, cm, wm, speedup);
    }
    if worst_plan_speedup.is_finite() {
        println!(
            "\nwisegraph-prof: worst cold/warm planning speedup {worst_plan_speedup:.2}x\n"
        );
    }

    // Sharded multi-device tables: per-device work skew and real exchanged
    // bytes for every placement a model supports at SHARD_DEVICES devices,
    // then the optimizer's selection against the always-data-parallel
    // default. Tensor parallelism replicates every vertex's row work and
    // splits columns, so its device skew sits at 1.00 while the halo
    // schedules inherit the shard's edge imbalance.
    println!(
        "| model | placement | device skew (max/mean) | comm bytes | comm time (µs) | selected |"
    );
    println!("|---|---|---|---|---|---|");
    for r in &run.sharded {
        println!(
            "| {} | {} | {:.2} | {} | {:.2} | {} |",
            r.model,
            r.placement.name(),
            r.device_skew,
            r.comm_bytes,
            r.comm_time * 1e6,
            if r.selected { "yes" } else { "" }
        );
    }
    println!();
    println!("| model | selected placement | selected comm (µs) | data-parallel comm (µs) | speedup |");
    println!("|---|---|---|---|---|");
    let mut worst_select_speedup = f64::INFINITY;
    for (_, slug) in models() {
        let Some(sel) = run.sharded.iter().find(|r| r.model == slug && r.selected)
        else {
            continue;
        };
        let Some(dp) = run
            .sharded
            .iter()
            .find(|r| r.model == slug && r.placement == PlacementKind::DataParallel)
        else {
            continue;
        };
        let speedup = dp.comm_time / sel.comm_time.max(f64::MIN_POSITIVE);
        worst_select_speedup = worst_select_speedup.min(speedup);
        println!(
            "| {} | {} | {:.2} | {:.2} | {:.2}x |",
            slug,
            sel.placement.name(),
            sel.comm_time * 1e6,
            dp.comm_time * 1e6,
            speedup
        );
    }
    if worst_select_speedup.is_finite() {
        println!(
            "\nwisegraph-prof: optimizer-selected placement is never slower than \
             data-parallel (worst speedup {worst_select_speedup:.2}x)\n"
        );
        // The selector minimizes over a candidate set that contains
        // data-parallel, so this cannot regress silently.
        assert!(
            worst_select_speedup >= 1.0,
            "selected placement slower than always-data-parallel"
        );
    }

    // Critical-path attribution tables (opt-in: `--critical-path`). The
    // percentages are logical fractions of the makespan — deterministic,
    // not wall clock — and the headroom column is the idle a posted-early
    // send could have reclaimed (bounded by the sender's prior compute).
    if critical {
        println!(
            "| model | placement | devices | critical len | steps | busy % | exch % | idle % | straggler | headroom |"
        );
        println!("|---|---|---|---|---|---|---|---|---|---|");
        for r in &run.critical {
            let d = r.report.devices.len();
            let mut busy = 0.0;
            let mut exch = 0.0;
            let mut idle = 0.0;
            for i in 0..d {
                let (b, e, w) = r.report.fractions(i);
                busy += b;
                exch += e;
                idle += w;
            }
            let n = d.max(1) as f64;
            println!(
                "| {} | {} | {} | {} | {} | {:.1} | {:.1} | {:.1} | {} | {} |",
                r.model,
                r.placement.name(),
                r.devices,
                r.report.makespan,
                r.report.critical_path.len(),
                100.0 * busy / n,
                100.0 * exch / n,
                100.0 * idle / n,
                r.report.straggler(),
                r.report.headroom_total(),
            );
        }
        println!();
        println!("| model | placement | device | busy | exchange | idle wait | finish |");
        println!("|---|---|---|---|---|---|---|");
        for r in &run.critical {
            if r.devices != SHARD_DEVICES {
                continue;
            }
            for a in &r.report.devices {
                println!(
                    "| {} | {} | {} | {} | {} | {} | {} |",
                    r.model,
                    r.placement.name(),
                    a.device,
                    a.busy,
                    a.exchange,
                    a.idle_wait,
                    a.finish,
                );
            }
        }
        println!();
        write(
            &results.join("prof_critical.json"),
            &critical_to_json(&run.critical),
        );
    }

    for (slug, c) in &run.per_model {
        write(&results.join(format!("prof_{slug}.json")), &counters_to_json(c));
    }
    write(&results.join("prof_trace.json"), &trace_to_chrome_json(&trace));
    write(
        &results.join("BENCH_executor.json"),
        &timings_to_bench_json("executor", &run.timings),
    );

    if write_baseline {
        write(
            &results.join("prof_baseline.json"),
            &counters_to_json(&run.all),
        );
    }

    if !check {
        return ExitCode::SUCCESS;
    }

    // Gate (a): two consecutive runs produce bit-identical counters.
    let (rerun, _) = capture(|| run_suite(PROFILE_THREADS, 0));
    if counters_to_json(&rerun.all) != counters_to_json(&run.all) {
        eprintln!(
            "wisegraph-prof: FAIL — counter snapshots differ between two \
             consecutive runs"
        );
        return ExitCode::FAILURE;
    }
    println!("wisegraph-prof: run-to-run counters bit-identical");

    // Gate (b): Work counters are invariant across thread counts.
    let work_views: Vec<String> = CHECK_THREADS
        .iter()
        .map(|&t| {
            let (r, _) = capture(|| run_suite(t, 0));
            counters_to_json(&r.all.only(&[Class::Work]))
        })
        .collect();
    if work_views.iter().any(|v| v != &work_views[0]) {
        eprintln!(
            "wisegraph-prof: FAIL — Work-class counters vary across \
             {CHECK_THREADS:?} threads"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "wisegraph-prof: Work counters bit-identical across {CHECK_THREADS:?} threads"
    );

    // Gate (c): tolerance bands against the committed baseline.
    let baseline_path = results.join("prof_baseline.json");
    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "wisegraph-prof: FAIL — cannot read {} ({e}); run \
                 `wisegraph-prof --write-baseline` and commit the result",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let baseline = match counters_from_json(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("wisegraph-prof: FAIL — malformed baseline: {e}");
            return ExitCode::FAILURE;
        }
    };
    let errs = check_against_baseline(&run.all, &baseline);
    if !errs.is_empty() {
        for e in &errs {
            eprintln!("wisegraph-prof: baseline drift: {e}");
        }
        eprintln!(
            "wisegraph-prof: FAIL — {} counter(s) outside tolerance; if the \
             change is intended, rerun with --write-baseline and commit",
            errs.len()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "wisegraph-prof: {} baseline counters within tolerance — PASS",
        baseline.len()
    );
    ExitCode::SUCCESS
}
