//! `wisegraph-lint`: the pre-execution static verification gate.
//!
//! Runs every pass of `wisegraph-analysis` over every built-in model ×
//! candidate partition strategy on a synthetic RMAT graph:
//!
//! * the model DFG is verified (well-formedness + dimension inference),
//!   and every repo rewrite (`cse`, `prune_dead`, each transformation
//!   candidate) is checked for interface preservation;
//! * every table from `enumerate_tables` is partitioned with the greedy
//!   partitioner and the resulting plan, compiled program, and engine
//!   chunk mapping are verified for several thread counts;
//! * the span-instrumentation coverage of the execution entry points is
//!   checked against the shipped sources (`O001`), so `wisegraph-prof`'s
//!   timeline cannot silently lose its subjects;
//! * every fusion pattern the micro-kernel codegen can emit must have a
//!   registered interpreter-parity test in `tests/fused_parity.rs`
//!   (`K006`), so a pattern cannot land without its differential harness
//!   entry; per-combination fused plans are additionally coverage-checked
//!   by `verify_execution` (`K005`);
//! * every cached artifact type must have a registered byte-roundtrip
//!   test in `tests/cache_roundtrip.rs` (`C002`), and incremental gTask
//!   repair after a canned delta stream must verify identically to a
//!   from-scratch partition of the live set (`C001`).
//!
//! Exits nonzero if any pass reports an error, printing each diagnostic;
//! `scripts/verify.sh` runs this after the test suite.

use std::process::ExitCode;
use wisegraph::analysis::prelude::*;
use wisegraph::analysis::verify_execution;
use wisegraph::dfg::passes::{cse, prune_dead};
use wisegraph::dfg::transform;
use wisegraph::dfg::Binding;
use wisegraph::graph::generate::{rmat, RmatParams};
use wisegraph::gtask::restriction::enumerate_tables;
use wisegraph::gtask::{partition, GraphDelta, IncrementalPlan};
use wisegraph::kernels::micro::{compile, plan_is_dst_complete};
use wisegraph::models::ModelKind;

/// Thread counts the chunk-mapping pass is exercised with.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// `Exact(k)` batch sizes for table enumeration.
const BATCH_SIZES: [u64; 2] = [4, 32];

fn main() -> ExitCode {
    let params = RmatParams {
        num_vertices: 300,
        num_edges: 2400,
        a: 0.57,
        b: 0.19,
        c: 0.19,
        num_edge_types: 4,
        seed: 7,
    };
    let g = rmat(&params);
    let binding = Binding::from_graph(&g);
    println!(
        "wisegraph-lint: RMAT graph with {} vertices, {} edges, {} edge types",
        g.num_vertices(),
        g.num_edges(),
        g.num_edge_types()
    );

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut combos = 0usize;
    let mut skipped = 0usize;
    let fail = |ctx: &str, report: &Report, errors: &mut usize, warnings: &mut usize| {
        for d in &report.diagnostics {
            println!("{ctx}: {d}");
        }
        *errors += report.error_count();
        *warnings += report.warning_count();
    };

    for model in [
        ModelKind::Gcn,
        ModelKind::Rgcn,
        ModelKind::Gat,
        ModelKind::Sage,
    ] {
        let dfg = model.layer_dfg(8, 6);

        // Pass 1: the model DFG itself.
        let mut dfg_report = Report::new();
        dfg_report.extend(verify_dfg(&dfg, Some(&binding)));

        // Pass 2: every repo rewrite must preserve the interface.
        dfg_report.extend(verify_rewrite(&dfg, &cse(&dfg), "cse"));
        dfg_report.extend(verify_rewrite(&dfg, &prune_dead(&dfg), "prune_dead"));
        for (ci, cand) in transform::candidates(&dfg, &binding).iter().enumerate() {
            dfg_report.extend(verify_rewrite(&dfg, cand, &format!("candidate #{ci}")));
            dfg_report.extend(verify_dfg(cand, Some(&binding)));
        }
        fail(&format!("{model:?}"), &dfg_report, &mut errors, &mut warnings);

        // Pass 3: every candidate table × thread count.
        let indexing: Vec<_> = effective_indexing_attrs(&dfg).into_iter().collect();
        let dst_complete_only = compile(&dfg, &g)
            .map(|p| p.requires_dst_complete)
            .unwrap_or(false);
        for table in enumerate_tables(&indexing, &BATCH_SIZES) {
            let plan = partition(&g, &table);
            if dst_complete_only && !plan_is_dst_complete(&g, &plan) {
                // The program can never legally run under this plan;
                // verify_execution would (correctly) flag K004. Count it
                // as a skip, not a lint failure: strategy search already
                // filters these combinations out.
                skipped += 1;
                continue;
            }
            for threads in THREAD_COUNTS {
                combos += 1;
                let report = verify_execution(&dfg, &g, &plan, threads);
                if !report.is_clean() || report.warning_count() > 0 {
                    fail(
                        &format!("{model:?} × [{table}] × {threads} threads"),
                        &report,
                        &mut errors,
                        &mut warnings,
                    );
                }
            }
        }
    }

    // Pass 4: span-instrumentation coverage of the shipped sources. When
    // the binary runs from a checkout (verify.sh does), the sources are
    // under the manifest dir; installed copies skip the pass gracefully
    // by reporting the unreadable files.
    let obs_report =
        verify_instrumentation(std::path::Path::new(env!("CARGO_MANIFEST_DIR")));
    fail("instrumentation", &obs_report, &mut errors, &mut warnings);
    println!(
        "wisegraph-lint: instrumentation coverage checked for {} source files",
        wisegraph::analysis::obscheck::REQUIRED.len()
    );

    // Pass 5: every fusion pattern must register an interpreter-parity
    // test in the differential harness (K006).
    let mut registry_report = Report::new();
    registry_report.extend(verify_fused_parity_registry(std::path::Path::new(env!(
        "CARGO_MANIFEST_DIR"
    ))));
    fail("fused parity registry", &registry_report, &mut errors, &mut warnings);
    println!(
        "wisegraph-lint: {} fusion patterns checked against tests/fused_parity.rs",
        wisegraph::kernels::fused::FusedPattern::ALL.len()
    );

    // Pass 6: every cached artifact type must register a byte-roundtrip
    // test in tests/cache_roundtrip.rs (C002), and incremental repair must
    // verify against a from-scratch partition for every candidate table
    // (C001) after a canned insert/delete stream.
    let mut cache_report = Report::new();
    cache_report.extend(verify_cache_roundtrip_registry(std::path::Path::new(
        env!("CARGO_MANIFEST_DIR"),
    )));
    let mut repairs = 0usize;
    for table in enumerate_tables(
        &[
            wisegraph::graph::AttrKind::SrcId,
            wisegraph::graph::AttrKind::DstId,
            wisegraph::graph::AttrKind::EdgeType,
        ],
        &BATCH_SIZES,
    ) {
        let mut inc = IncrementalPlan::new(&g, table.clone());
        inc.apply(
            &g,
            &GraphDelta::deleting((0..g.num_edges()).step_by(7).collect()),
        );
        inc.apply(&g, &GraphDelta::inserting((0..g.num_edges()).step_by(14).collect()));
        let live = inc.live_edges();
        let snap = inc.snapshot(&g);
        cache_report.extend(verify_repair(&g, &table, &live, &snap));
        repairs += 1;
    }
    fail("planning cache", &cache_report, &mut errors, &mut warnings);
    println!(
        "wisegraph-lint: {} cached artifact types checked against \
         tests/cache_roundtrip.rs, {repairs} incremental repairs verified",
        wisegraph::cache::CachedArtifact::ALL.len()
    );

    println!(
        "wisegraph-lint: {combos} model×strategy×threads combinations verified, \
         {skipped} dst-incomplete combinations skipped, {errors} error(s), \
         {warnings} warning(s)"
    );
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
