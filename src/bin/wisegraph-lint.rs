//! `wisegraph-lint`: the pre-execution static verification gate.
//!
//! Runs every pass of `wisegraph-analysis` over every built-in model ×
//! candidate partition strategy on a synthetic RMAT graph:
//!
//! * the model DFG is verified (well-formedness + dimension inference),
//!   and every repo rewrite (`cse`, `prune_dead`, each transformation
//!   candidate) is checked for interface preservation;
//! * every table from `enumerate_tables` is partitioned with the greedy
//!   partitioner and the resulting plan, compiled program, engine chunk
//!   mapping, and schedule-interference verdict (`R001`–`R005`) are
//!   verified for several thread counts;
//! * the span-instrumentation coverage of the execution entry points is
//!   checked against the shipped sources (`O001`), so `wisegraph-prof`'s
//!   timeline cannot silently lose its subjects; the cluster schedule
//!   phases and mailbox operations that feed the causal trace and
//!   critical-path attribution are likewise checked (`O002`);
//! * every fusion pattern the micro-kernel codegen can emit must have a
//!   registered interpreter-parity test in `tests/fused_parity.rs`
//!   (`K006`), so a pattern cannot land without its differential harness
//!   entry; per-combination fused plans are additionally coverage-checked
//!   by `verify_execution` (`K005`);
//! * every cached artifact type must have a registered byte-roundtrip
//!   test in `tests/cache_roundtrip.rs` (`C002`), and incremental gTask
//!   repair after a canned delta stream must verify identically to a
//!   from-scratch partition of the live set (`C001`);
//! * every model × table × 1/2/4-thread combination is *executed* under
//!   the engine's `ExecMode::Sanitize` shadow-memory sanitizer and
//!   cross-checked against the static interference verdict: a runtime
//!   conflict the static pass declared safe is a hard error, and the
//!   sanitized outputs must be bit-identical to `ExecMode::Auto`;
//! * every model is *executed* on real 2- and 4-device sharded clusters
//!   with the optimizer-selected placement schedule: shard tiling and
//!   exactly-once edge coverage (`S001`), collective exchange
//!   conservation (`S002`), placement/program compatibility of the
//!   selection (`S003`), and bit-identity of the assembled outputs
//!   against a plain single-engine run.
//!
//! Exits nonzero if any pass reports an error, printing each diagnostic;
//! `scripts/verify.sh` runs this after the test suite. With `--json`, all
//! human-readable output is replaced by a single machine-readable JSON
//! document on stdout with a stable field order.

use std::collections::HashMap;
use std::process::ExitCode;
use wisegraph::analysis::prelude::*;
use wisegraph::analysis::verify_execution;
use wisegraph::dfg::passes::{cse, prune_dead};
use wisegraph::dfg::transform;
use wisegraph::dfg::Binding;
use wisegraph::graph::generate::{rmat, RmatParams};
use wisegraph::graph::Graph;
use wisegraph::gtask::restriction::enumerate_tables;
use wisegraph::gtask::{partition, GraphDelta, IncrementalPlan};
use wisegraph::kernels::engine::{execute_parallel_mode, Engine, ExecMode};
use wisegraph::kernels::micro::{compile, plan_is_dst_complete};
use wisegraph::models::ModelKind;
use wisegraph::tensor::{init, Tensor};

/// Thread counts the chunk-mapping pass is exercised with.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Thread counts the shadow-memory sanitizer pass executes with.
const SANITIZE_THREADS: [usize; 3] = [1, 2, 4];

/// `Exact(k)` batch sizes for table enumeration.
const BATCH_SIZES: [u64; 2] = [4, 32];

/// Feature dims for the lint models (matches `wisegraph-prof`).
const DIMS: (usize, usize) = (8, 6);

/// Collects diagnostics for both output formats: human lines as they
/// happen (unless `--json`), plus a structured record list rendered once
/// at the end.
struct Sink {
    json: bool,
    errors: usize,
    warnings: usize,
    records: Vec<(String, Diagnostic)>,
}

impl Sink {
    fn report(&mut self, ctx: &str, report: &Report) {
        for d in &report.diagnostics {
            if !self.json {
                println!("{ctx}: {d}");
            }
            self.records.push((ctx.to_string(), d.clone()));
        }
        self.errors += report.error_count();
        self.warnings += report.warning_count();
    }

    fn say(&self, line: String) {
        if !self.json {
            println!("{line}");
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Every global any model layer reads; engines ignore unused entries.
/// Mirrors `wisegraph-prof`'s fixture so lint and prof sanitize the same
/// workloads.
fn globals_for(g: &Graph, fi: usize, fo: usize) -> HashMap<String, Tensor> {
    let mut m = HashMap::new();
    m.insert(
        "h".to_string(),
        init::uniform_tensor(&[g.num_vertices(), fi], -1.0, 1.0, 1),
    );
    m.insert(
        "W".to_string(),
        init::uniform_tensor(&[g.num_edge_types(), fi, fo], -1.0, 1.0, 2),
    );
    m.insert("w".to_string(), init::uniform_tensor(&[fi, fo], -1.0, 1.0, 3));
    m.insert(
        "w_self".to_string(),
        init::uniform_tensor(&[fi, fo], -1.0, 1.0, 4),
    );
    m.insert(
        "w_neigh".to_string(),
        init::uniform_tensor(&[fi, fo], -1.0, 1.0, 5),
    );
    m.insert(
        "a_src".to_string(),
        init::uniform_tensor(&[fo, 1], -1.0, 1.0, 6),
    );
    m.insert(
        "a_dst".to_string(),
        init::uniform_tensor(&[fo, 1], -1.0, 1.0, 7),
    );
    m
}

fn main() -> ExitCode {
    let mut json = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            other => {
                eprintln!("wisegraph-lint: unknown argument `{other}` (accepted: --json)");
                return ExitCode::FAILURE;
            }
        }
    }
    let params = RmatParams {
        num_vertices: 300,
        num_edges: 2400,
        a: 0.57,
        b: 0.19,
        c: 0.19,
        num_edge_types: 4,
        seed: 7,
    };
    let g = rmat(&params);
    let binding = Binding::from_graph(&g);
    let mut sink = Sink {
        json,
        errors: 0,
        warnings: 0,
        records: Vec::new(),
    };
    sink.say(format!(
        "wisegraph-lint: RMAT graph with {} vertices, {} edges, {} edge types",
        g.num_vertices(),
        g.num_edges(),
        g.num_edge_types()
    ));

    let mut combos = 0usize;
    let mut skipped = 0usize;

    let models = [
        ModelKind::Gcn,
        ModelKind::Rgcn,
        ModelKind::Gat,
        ModelKind::Sage,
    ];
    for model in models {
        let dfg = model.layer_dfg(DIMS.0, DIMS.1);

        // Pass 1: the model DFG itself.
        let mut dfg_report = Report::new();
        dfg_report.extend(verify_dfg(&dfg, Some(&binding)));

        // Pass 2: every repo rewrite must preserve the interface.
        dfg_report.extend(verify_rewrite(&dfg, &cse(&dfg), "cse"));
        dfg_report.extend(verify_rewrite(&dfg, &prune_dead(&dfg), "prune_dead"));
        for (ci, cand) in transform::candidates(&dfg, &binding).iter().enumerate() {
            dfg_report.extend(verify_rewrite(&dfg, cand, &format!("candidate #{ci}")));
            dfg_report.extend(verify_dfg(cand, Some(&binding)));
        }
        sink.report(&format!("{model:?}"), &dfg_report);

        // Pass 3: every candidate table × thread count.
        let indexing: Vec<_> = effective_indexing_attrs(&dfg).into_iter().collect();
        let dst_complete_only = compile(&dfg, &g)
            .map(|p| p.requires_dst_complete)
            .unwrap_or(false);
        for table in enumerate_tables(&indexing, &BATCH_SIZES) {
            let plan = partition(&g, &table);
            if dst_complete_only && !plan_is_dst_complete(&g, &plan) {
                // The program can never legally run under this plan;
                // verify_execution would (correctly) flag K004. Count it
                // as a skip, not a lint failure: strategy search already
                // filters these combinations out.
                skipped += 1;
                continue;
            }
            for threads in THREAD_COUNTS {
                combos += 1;
                let report = verify_execution(&dfg, &g, &plan, threads);
                if !report.is_clean() || report.warning_count() > 0 {
                    sink.report(
                        &format!("{model:?} × [{table}] × {threads} threads"),
                        &report,
                    );
                }
            }
        }
    }

    // Pass 4: span-instrumentation coverage of the shipped sources. When
    // the binary runs from a checkout (verify.sh does), the sources are
    // under the manifest dir; installed copies skip the pass gracefully
    // by reporting the unreadable files.
    let obs_report =
        verify_instrumentation(std::path::Path::new(env!("CARGO_MANIFEST_DIR")));
    sink.report("instrumentation", &obs_report);
    sink.say(format!(
        "wisegraph-lint: instrumentation coverage checked for {} source files",
        wisegraph::analysis::obscheck::REQUIRED.len()
    ));

    // Pass 4b: cluster phase coverage (O002). Every cluster schedule
    // phase and mailbox operation must keep the span / phase-recording
    // call the causal trace and critical-path attribution are built from.
    let phase_report =
        verify_phase_instrumentation(std::path::Path::new(env!("CARGO_MANIFEST_DIR")));
    sink.report("cluster phase instrumentation", &phase_report);
    sink.say(format!(
        "wisegraph-lint: cluster phase coverage checked for {} function(s)",
        wisegraph::analysis::obscheck::REQUIRED_PHASES
            .iter()
            .map(|(_, fns)| fns.len())
            .sum::<usize>()
    ));

    // Pass 5: every fusion pattern must register an interpreter-parity
    // test in the differential harness (K006).
    let mut registry_report = Report::new();
    registry_report.extend(verify_fused_parity_registry(std::path::Path::new(env!(
        "CARGO_MANIFEST_DIR"
    ))));
    sink.report("fused parity registry", &registry_report);
    sink.say(format!(
        "wisegraph-lint: {} fusion patterns checked against tests/fused_parity.rs",
        wisegraph::kernels::fused::FusedPattern::ALL.len()
    ));

    // Pass 6: every cached artifact type must register a byte-roundtrip
    // test in tests/cache_roundtrip.rs (C002), and incremental repair must
    // verify against a from-scratch partition for every candidate table
    // (C001) after a canned insert/delete stream.
    let mut cache_report = Report::new();
    cache_report.extend(verify_cache_roundtrip_registry(std::path::Path::new(
        env!("CARGO_MANIFEST_DIR"),
    )));
    let mut repairs = 0usize;
    for table in enumerate_tables(
        &[
            wisegraph::graph::AttrKind::SrcId,
            wisegraph::graph::AttrKind::DstId,
            wisegraph::graph::AttrKind::EdgeType,
        ],
        &BATCH_SIZES,
    ) {
        let mut inc = IncrementalPlan::new(&g, table.clone());
        inc.apply(
            &g,
            &GraphDelta::deleting((0..g.num_edges()).step_by(7).collect()),
        );
        inc.apply(&g, &GraphDelta::inserting((0..g.num_edges()).step_by(14).collect()));
        let live = inc.live_edges();
        let snap = inc.snapshot(&g);
        cache_report.extend(verify_repair(&g, &table, &live, &snap));
        repairs += 1;
    }
    sink.report("planning cache", &cache_report);
    sink.say(format!(
        "wisegraph-lint: {} cached artifact types checked against \
         tests/cache_roundtrip.rs, {repairs} incremental repairs verified",
        wisegraph::cache::CachedArtifact::ALL.len()
    ));

    // Pass 7: shadow-memory sanitizer cross-check. Every model × table ×
    // 1/2/4-thread combination actually executes under ExecMode::Sanitize;
    // the dynamic per-cell last-writer records must agree with the static
    // interference verdict (a runtime conflict the static pass declared
    // safe is a hard error), and the sanitized outputs must be
    // bit-identical to ExecMode::Auto.
    let globals = globals_for(&g, DIMS.0, DIMS.1);
    let mut sanitized = 0usize;
    for model in models {
        let dfg = model.layer_dfg(DIMS.0, DIMS.1);
        let indexing: Vec<_> = effective_indexing_attrs(&dfg).into_iter().collect();
        let dst_complete_only = compile(&dfg, &g)
            .map(|p| p.requires_dst_complete)
            .unwrap_or(false);
        for table in enumerate_tables(&indexing, &BATCH_SIZES) {
            let plan = partition(&g, &table);
            if dst_complete_only && !plan_is_dst_complete(&g, &plan) {
                continue;
            }
            for threads in SANITIZE_THREADS {
                sanitized += 1;
                let ctx = format!(
                    "sanitize {model:?} × [{table}] × {threads} threads"
                );
                let static_report = verify_execution(&dfg, &g, &plan, threads);
                let mut dyn_report = Report::new();
                let engine = Engine::with_mode(threads, ExecMode::Sanitize);
                match engine.execute(&dfg, &g, &plan, &globals) {
                    Ok(out) => {
                        let rep = engine
                            .last_sanitize()
                            .expect("sanitized run must leave a report");
                        if !rep.conflicts.is_empty() && static_report.is_clean() {
                            dyn_report.push(Diagnostic::error(
                                Code::ScheduleWriteOverlap,
                                Span::Global,
                                format!(
                                    "shadow sanitizer observed {} exclusive-\
                                     ownership conflict(s) on a schedule the \
                                     static interference pass declared safe",
                                    rep.conflicts.len()
                                ),
                            ));
                        }
                        match execute_parallel_mode(
                            &dfg, &g, &plan, &globals, threads, ExecMode::Auto,
                        ) {
                            Ok(auto) => {
                                let identical = out.len() == auto.len()
                                    && out
                                        .iter()
                                        .zip(auto.iter())
                                        .all(|(a, b)| a.data() == b.data());
                                if !identical {
                                    dyn_report.push(Diagnostic::error(
                                        Code::ScheduleFusedDivergence,
                                        Span::Global,
                                        "Sanitize-mode outputs are not \
                                         bit-identical to Auto-mode outputs",
                                    ));
                                }
                            }
                            Err(e) => dyn_report.push(Diagnostic::error(
                                Code::ScheduleFusedDivergence,
                                Span::Global,
                                format!(
                                    "Auto mode rejected a combination the \
                                     sanitizer executed: {e}"
                                ),
                            )),
                        }
                    }
                    Err(e) => {
                        if static_report.is_clean() {
                            dyn_report.push(Diagnostic::error(
                                Code::ScheduleWriteOverlap,
                                Span::Global,
                                format!(
                                    "sanitized execution failed on a schedule \
                                     the static interference pass declared \
                                     safe: {e}"
                                ),
                            ));
                        }
                    }
                }
                if !dyn_report.is_clean() {
                    sink.report(&ctx, &dyn_report);
                }
            }
        }
    }
    sink.say(format!(
        "wisegraph-lint: {sanitized} combinations executed under the shadow \
         sanitizer and cross-checked against the static verdict"
    ));

    // Pass 8: sharded multi-device execution (S001–S003). Every model
    // runs on a real 2- and 4-device cluster with the optimizer-selected
    // placement; the shard must tile and cover exactly once (S001), the
    // collective exchange log must be conserved (S002), the selected
    // placement must be compatible (S003), and the assembled outputs must
    // be bit-identical to a plain single-engine run.
    let fabric = wisegraph::sim::Fabric::pcie4_quad();
    let mut sharded_runs = 0usize;
    for model in models {
        let dfg = model.layer_dfg(DIMS.0, DIMS.1);
        let Ok(program) = compile(&dfg, &g) else { continue };
        let plan = partition(
            &g,
            &wisegraph::gtask::PartitionTable::vertex_centric(),
        );
        let reference = execute_parallel_mode(
            &dfg, &g, &plan, &globals, 2, ExecMode::Auto,
        );
        for devices in [2usize, 4] {
            sharded_runs += 1;
            let ctx = format!("sharded {model:?} × {devices} devices");
            let mut shard_report = Report::new();
            shard_report.extend(verify_shard_coverage(&g, &plan, devices));
            let cluster = wisegraph::kernels::ClusterEngine::new(devices, 2);
            match wisegraph::core::sharded::execute_sharded(
                &cluster, &dfg, &g, &plan, &globals, &fabric, DIMS.0, DIMS.1,
            ) {
                Ok((run, choice)) => {
                    shard_report.extend(verify_placement(
                        &program, &g, &globals, choice.placement,
                    ));
                    shard_report.extend(verify_exchange(&run.exchange));
                    // Compute-then-reduce reorders the partial-aggregate
                    // sums (group order instead of worker order), so it is
                    // numerically close but not bit-identical to the plain
                    // engine; every other schedule must match exactly.
                    if choice.placement
                        != wisegraph::sim::PlacementKind::ComputeThenReduce
                    {
                        if let Ok(reference) = &reference {
                            let identical = reference.len() == run.outputs.len()
                                && reference
                                    .iter()
                                    .zip(run.outputs.iter())
                                    .all(|(a, b)| a.data() == b.data());
                            if !identical {
                                shard_report.push(Diagnostic::error(
                                    Code::ShardCoverage,
                                    Span::Global,
                                    "sharded outputs are not bit-identical to \
                                     the single-engine reference",
                                ));
                            }
                        }
                    }
                }
                Err(e) => shard_report.push(Diagnostic::error(
                    Code::PlacementIncompatible,
                    Span::Global,
                    format!("sharded execution failed: {e}"),
                )),
            }
            if !shard_report.is_clean() {
                sink.report(&ctx, &shard_report);
            }
        }
    }
    sink.say(format!(
        "wisegraph-lint: {sharded_runs} sharded cluster runs verified \
         (shard coverage, exchange conservation, placement selection)"
    ));

    sink.say(format!(
        "wisegraph-lint: {combos} model×strategy×threads combinations verified, \
         {skipped} dst-incomplete combinations skipped, {} error(s), \
         {} warning(s)",
        sink.errors, sink.warnings
    ));

    if json {
        // Stable field order: tool, graph, combos, skipped,
        // sanitize_combos, errors, warnings, diagnostics.
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"tool\": \"wisegraph-lint\",\n");
        out.push_str(&format!(
            "  \"graph\": {{\"vertices\": {}, \"edges\": {}, \"edge_types\": {}}},\n",
            g.num_vertices(),
            g.num_edges(),
            g.num_edge_types()
        ));
        out.push_str(&format!("  \"combos\": {combos},\n"));
        out.push_str(&format!("  \"skipped\": {skipped},\n"));
        out.push_str(&format!("  \"sanitize_combos\": {sanitized},\n"));
        out.push_str(&format!("  \"errors\": {},\n", sink.errors));
        out.push_str(&format!("  \"warnings\": {},\n", sink.warnings));
        out.push_str("  \"diagnostics\": [");
        for (i, (ctx, d)) in sink.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"context\": \"{}\", ", esc(ctx)));
            out.push_str(&format!("\"severity\": \"{}\", ", d.severity));
            out.push_str(&format!("\"code\": \"{}\", ", d.code));
            out.push_str(&format!("\"span\": \"{}\", ", esc(&d.span.to_string())));
            out.push_str(&format!("\"message\": \"{}\", ", esc(&d.message)));
            match &d.suggestion {
                Some(s) => out.push_str(&format!("\"suggestion\": \"{}\"", esc(s))),
                None => out.push_str("\"suggestion\": null"),
            }
            out.push('}');
        }
        if !sink.records.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        println!("{out}");
    }

    if sink.errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
