//! WiseGraph — joint workload partition of graph data and GNN operations.
//!
//! Rust reproduction of *WiseGraph: Optimizing GNN with Joint Workload
//! Partition of Graph and Operations* (Huang et al., EuroSys 2024).
//!
//! This facade crate re-exports every subsystem of the workspace:
//!
//! - [`tensor`]: dense tensors and reverse-mode autograd;
//! - [`graph`]: CSR/COO graph structures, synthetic datasets, sampling;
//! - [`dfg`]: the GNN operation data-flow graph IR and its transformations;
//! - [`gtask`]: the gTask abstraction — partition tables, restrictions, the
//!   greedy graph partitioner, data patterns, and outlier identification;
//! - [`sim`]: the calibrated analytic GPU and interconnect model that stands
//!   in for the paper's A100 testbed;
//! - [`kernels`]: composable micro-kernels and fused kernel generation;
//! - [`models`]: the five evaluated GNN models (GCN, SAGE, SAGE-LSTM, GAT,
//!   RGCN);
//! - [`baselines`]: tensor-centric / graph-centric / multi-GPU baseline
//!   executors;
//! - [`core`]: the end-to-end WiseGraph workflow (plan generation, joint
//!   optimization, strategy search, training);
//! - [`analysis`]: the pre-execution static verifier — plan, DFG, and
//!   kernel legality checks behind the `wisegraph-lint` binary;
//! - [`cache`]: the content-addressed planning cache — byte-stable
//!   artifact serialization, FNV content hashing, and the
//!   [`PlanCache`](wisegraph_cache::PlanCache) store that lets warm runs
//!   skip partitioning, DFG optimization, and kernel compilation;
//! - [`obs`]: the hermetic tracing/metrics layer — deterministic work
//!   counters, structured spans, and the Chrome-trace/metrics exporters
//!   behind the `wisegraph-prof` binary.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end optimization run.

pub use wisegraph_analysis as analysis;
pub use wisegraph_baselines as baselines;
pub use wisegraph_cache as cache;
pub use wisegraph_core as core;
pub use wisegraph_dfg as dfg;
pub use wisegraph_graph as graph;
pub use wisegraph_gtask as gtask;
pub use wisegraph_kernels as kernels;
pub use wisegraph_models as models;
pub use wisegraph_obs as obs;
pub use wisegraph_sim as sim;
pub use wisegraph_tensor as tensor;
